//! Items, itemsets and association rules.

use serde::{Deserialize, Serialize};
use std::fmt;
use subtab_binning::{BinId, BinnedTable};

/// A single (column, bin) item.
///
/// A row of a binned table *contains* the item when its cell in `column`
/// falls in bin `bin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Item {
    /// Column index in the binned table.
    pub column: usize,
    /// Bin identifier within that column.
    pub bin: BinId,
}

impl Item {
    /// Creates an item.
    pub fn new(column: usize, bin: BinId) -> Self {
        Item { column, bin }
    }

    /// Whether row `row` of `binned` contains this item.
    pub fn matches(&self, binned: &BinnedTable, row: usize) -> bool {
        binned.bin_id(row, self.column) == self.bin
    }

    /// Human-readable rendering, e.g. `distance=[100.000, 550.000)`.
    pub fn render(&self, binned: &BinnedTable) -> String {
        binned.token(self.column, self.bin)
    }
}

/// An association rule `antecedent → consequent` (Definition 3.4).
///
/// Both sides are non-empty sets of items over *distinct* columns; `support`
/// is the fraction of rows containing all items of the rule, and `confidence`
/// the fraction of antecedent-matching rows that also match the consequent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Left-hand-side items (sorted by column).
    pub antecedent: Vec<Item>,
    /// Right-hand-side items (sorted by column).
    pub consequent: Vec<Item>,
    /// Fraction of rows for which the whole rule holds.
    pub support: f64,
    /// Number of rows for which the whole rule holds.
    pub support_count: usize,
    /// P(consequent | antecedent).
    pub confidence: f64,
    /// Lift = confidence / P(consequent).
    pub lift: f64,
}

impl AssociationRule {
    /// All items of the rule (antecedent then consequent).
    pub fn items(&self) -> impl Iterator<Item = &Item> {
        self.antecedent.iter().chain(self.consequent.iter())
    }

    /// Number of items in the rule (the paper's "rule size").
    pub fn size(&self) -> usize {
        self.antecedent.len() + self.consequent.len()
    }

    /// The set of column indices used by the rule (`U_R` in the paper),
    /// sorted ascending.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.items().map(|i| i.column).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Whether the rule holds for row `row` of `binned` (all items match).
    pub fn holds_for_row(&self, binned: &BinnedTable, row: usize) -> bool {
        self.items().all(|i| i.matches(binned, row))
    }

    /// Indices of all rows of `binned` for which the rule holds (`T_R`).
    pub fn matching_rows(&self, binned: &BinnedTable) -> Vec<usize> {
        (0..binned.num_rows())
            .filter(|&r| self.holds_for_row(binned, r))
            .collect()
    }

    /// Whether the rule uses at least one of the given columns.
    pub fn uses_any_column(&self, columns: &[usize]) -> bool {
        self.items().any(|i| columns.contains(&i.column))
    }

    /// Human-readable rendering of the rule.
    pub fn render(&self, binned: &BinnedTable) -> String {
        let side = |items: &[Item]| {
            items
                .iter()
                .map(|i| i.render(binned))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        format!(
            "{} → {}  (supp={:.3}, conf={:.3})",
            side(&self.antecedent),
            side(&self.consequent),
            self.support,
            self.confidence
        )
    }
}

impl fmt::Display for AssociationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |items: &[Item]| {
            items
                .iter()
                .map(|i| format!("c{}∈b{}", i.column, i.bin))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        write!(
            f,
            "{} → {} (supp={:.3}, conf={:.3})",
            side(&self.antecedent),
            side(&self.consequent),
            self.support,
            self.confidence
        )
    }
}

/// A collection of mined rules together with the statistics of the mining run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSet {
    /// The mined rules.
    pub rules: Vec<AssociationRule>,
    /// Number of rows the rules were mined over.
    pub num_rows: usize,
}

impl RuleSet {
    /// Creates a rule set.
    pub fn new(rules: Vec<AssociationRule>, num_rows: usize) -> Self {
        RuleSet { rules, num_rows }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Retains only rules that use at least one of the given target columns
    /// (the paper's `R*` when target columns are specified).
    pub fn filter_by_target_columns(&self, target_columns: &[usize]) -> RuleSet {
        if target_columns.is_empty() {
            return self.clone();
        }
        RuleSet {
            rules: self
                .rules
                .iter()
                .filter(|r| r.uses_any_column(target_columns))
                .cloned()
                .collect(),
            num_rows: self.num_rows,
        }
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &AssociationRule> {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned() -> BinnedTable {
        let t = Table::builder()
            .column_str("a", vec![Some("x"), Some("x"), Some("y"), Some("y")])
            .column_i64("b", vec![Some(1), Some(1), Some(0), Some(1)])
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    fn item(binned: &BinnedTable, col: &str, row: usize) -> Item {
        let c = binned.column_index(col).unwrap();
        Item::new(c, binned.bin_id(row, c))
    }

    #[test]
    fn item_matching() {
        let bt = binned();
        let i = item(&bt, "a", 0); // a = "x"
        assert!(i.matches(&bt, 0));
        assert!(i.matches(&bt, 1));
        assert!(!i.matches(&bt, 2));
        assert!(i.render(&bt).contains("a="));
    }

    #[test]
    fn rule_holds_and_matching_rows() {
        let bt = binned();
        let rule = AssociationRule {
            antecedent: vec![item(&bt, "a", 0)],
            consequent: vec![item(&bt, "b", 0)], // b = 1
            support: 0.5,
            support_count: 2,
            confidence: 1.0,
            lift: 4.0 / 3.0,
        };
        assert!(rule.holds_for_row(&bt, 0));
        assert!(rule.holds_for_row(&bt, 1));
        assert!(!rule.holds_for_row(&bt, 2));
        assert!(!rule.holds_for_row(&bt, 3)); // a="y"
        assert_eq!(rule.matching_rows(&bt), vec![0, 1]);
        assert_eq!(rule.size(), 2);
        assert_eq!(rule.columns(), vec![0, 1]);
        assert!(rule.uses_any_column(&[1]));
        assert!(!rule.uses_any_column(&[5]));
        assert!(rule.render(&bt).contains('→'));
        assert!(rule.to_string().contains("supp"));
    }

    #[test]
    fn ruleset_target_filter() {
        let bt = binned();
        let r1 = AssociationRule {
            antecedent: vec![item(&bt, "a", 0)],
            consequent: vec![item(&bt, "b", 0)],
            support: 0.5,
            support_count: 2,
            confidence: 1.0,
            lift: 1.0,
        };
        let r2 = AssociationRule {
            antecedent: vec![item(&bt, "a", 2)],
            consequent: vec![item(&bt, "a", 2)],
            support: 0.5,
            support_count: 2,
            confidence: 1.0,
            lift: 1.0,
        };
        let rs = RuleSet::new(vec![r1, r2], 4);
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        let filtered = rs.filter_by_target_columns(&[1]);
        assert_eq!(filtered.len(), 1);
        let unchanged = rs.filter_by_target_columns(&[]);
        assert_eq!(unchanged.len(), 2);
    }
}
