//! Items, column masks and association rules over dense item ids.

use crate::interner::{ItemId, ItemInterner};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use subtab_binning::{BinId, BinnedTable};

/// A single (column, bin) item in decoded form.
///
/// A row of a binned table *contains* the item when its cell in `column`
/// falls in bin `bin`. The mining and highlighting hot paths work on dense
/// [`ItemId`]s instead; `Item` is the cold, human-facing decoding obtained
/// through [`ItemInterner::item`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Item {
    /// Column index in the binned table.
    pub column: usize,
    /// Bin identifier within that column.
    pub bin: BinId,
}

impl Item {
    /// Creates an item.
    pub fn new(column: usize, bin: BinId) -> Self {
        Item { column, bin }
    }

    /// Whether row `row` of `binned` contains this item.
    pub fn matches(&self, binned: &BinnedTable, row: usize) -> bool {
        binned.bin_id(row, self.column) == self.bin
    }

    /// Human-readable rendering, e.g. `distance=[100.000, 550.000)`.
    pub fn render(&self, binned: &BinnedTable) -> String {
        binned.token(self.column, self.bin)
    }
}

/// A set of column indices packed as a bitmap (one `u64` word per 64
/// columns — tables can be wider than 64 columns, so this is not a single
/// word).
///
/// Every rule carries its column mask so that subset tests ("are all of
/// this rule's columns currently selected?") are a handful of word ANDs
/// instead of per-column membership scans, and so the highlight index can
/// bucket rules by identical masks.
///
/// The word vector never stores trailing zero words, which keeps `Eq` and
/// `Hash` canonical: two masks with the same columns always compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnMask {
    words: Vec<u64>,
}

impl ColumnMask {
    /// The empty mask.
    pub fn new() -> Self {
        ColumnMask::default()
    }

    /// Builds a mask from column indices.
    pub fn from_columns<I: IntoIterator<Item = usize>>(cols: I) -> Self {
        let mut mask = ColumnMask::new();
        for c in cols {
            mask.insert(c);
        }
        mask
    }

    /// Adds a column to the mask.
    pub fn insert(&mut self, col: usize) {
        let word = col / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (col % 64);
    }

    /// Whether the mask contains a column.
    pub fn contains(&self, col: usize) -> bool {
        self.words
            .get(col / 64)
            .is_some_and(|w| w & (1u64 << (col % 64)) != 0)
    }

    /// Whether every column of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &ColumnMask) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether the mask contains at least one of the given columns.
    pub fn contains_any(&self, cols: &[usize]) -> bool {
        cols.iter().any(|&c| self.contains(c))
    }

    /// Number of columns in the mask.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The column indices of the mask, ascending.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        for (i, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push(i * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
        out
    }
}

/// An association rule `antecedent → consequent` (Definition 3.4).
///
/// Both sides are non-empty, ascending slices of dense [`ItemId`]s over
/// *distinct* columns (ids are column-major, so ascending ids means
/// column-ordered items); `column_mask` is the precomputed set of columns
/// the rule touches. `support` is the fraction of rows containing all items
/// of the rule, and `confidence` the fraction of antecedent-matching rows
/// that also match the consequent. Decoding ids back to (column, bin) pairs
/// or display strings goes through the [`ItemInterner`] the owning
/// [`RuleSet`] shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Left-hand-side item ids (ascending, one per column).
    pub antecedent: Vec<ItemId>,
    /// Right-hand-side item ids (ascending, one per column).
    pub consequent: Vec<ItemId>,
    /// The set of columns used by the rule (`U_R` in the paper).
    pub column_mask: ColumnMask,
    /// Fraction of rows for which the whole rule holds.
    pub support: f64,
    /// Number of rows for which the whole rule holds.
    pub support_count: usize,
    /// P(consequent | antecedent).
    pub confidence: f64,
    /// Lift = confidence / P(consequent).
    pub lift: f64,
}

impl AssociationRule {
    /// Builds a rule from decoded items, interning them and computing the
    /// column mask (the cold construction path; the miners build rules
    /// directly in id space).
    #[allow(clippy::too_many_arguments)]
    pub fn from_items(
        interner: &ItemInterner,
        antecedent: &[Item],
        consequent: &[Item],
        support: f64,
        support_count: usize,
        confidence: f64,
        lift: f64,
    ) -> Self {
        let intern = |items: &[Item]| {
            let mut ids: Vec<ItemId> = items
                .iter()
                .map(|i| interner.id_of(i.column, i.bin))
                .collect();
            ids.sort_unstable();
            ids
        };
        let antecedent = intern(antecedent);
        let consequent = intern(consequent);
        let column_mask = ColumnMask::from_columns(
            antecedent
                .iter()
                .chain(&consequent)
                .map(|&id| interner.column_of(id)),
        );
        AssociationRule {
            antecedent,
            consequent,
            column_mask,
            support,
            support_count,
            confidence,
            lift,
        }
    }

    /// All item ids of the rule (antecedent then consequent).
    pub fn item_ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.antecedent.iter().chain(&self.consequent).copied()
    }

    /// All items of the rule in decoded form (antecedent then consequent).
    pub fn items<'a>(&'a self, interner: &'a ItemInterner) -> impl Iterator<Item = Item> + 'a {
        self.item_ids().map(|id| interner.item(id))
    }

    /// Number of items in the rule (the paper's "rule size").
    pub fn size(&self) -> usize {
        self.antecedent.len() + self.consequent.len()
    }

    /// The column indices used by the rule (`U_R` in the paper), ascending.
    pub fn columns(&self) -> Vec<usize> {
        self.column_mask.columns()
    }

    /// Whether the rule holds for row `row` of `binned` (all items match).
    pub fn holds_for_row(&self, interner: &ItemInterner, binned: &BinnedTable, row: usize) -> bool {
        self.item_ids()
            .all(|id| interner.item(id).matches(binned, row))
    }

    /// Indices of all rows of `binned` for which the rule holds (`T_R`).
    pub fn matching_rows(&self, interner: &ItemInterner, binned: &BinnedTable) -> Vec<usize> {
        let items: Vec<Item> = self.items(interner).collect();
        (0..binned.num_rows())
            .filter(|&r| items.iter().all(|i| i.matches(binned, r)))
            .collect()
    }

    /// Whether the rule uses at least one of the given columns.
    pub fn uses_any_column(&self, columns: &[usize]) -> bool {
        self.column_mask.contains_any(columns)
    }

    /// Human-readable rendering of the rule via the interner's `Arc`-shared
    /// display strings (no binned-table lookup needed).
    pub fn render(&self, interner: &ItemInterner) -> String {
        let side = |ids: &[ItemId]| {
            ids.iter()
                .map(|&id| interner.label(id).to_string())
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        format!(
            "{} → {}  (supp={:.3}, conf={:.3})",
            side(&self.antecedent),
            side(&self.consequent),
            self.support,
            self.confidence
        )
    }
}

impl fmt::Display for AssociationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |ids: &[ItemId]| {
            ids.iter()
                .map(|id| format!("#{id}"))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        write!(
            f,
            "{} → {} (supp={:.3}, conf={:.3})",
            side(&self.antecedent),
            side(&self.consequent),
            self.support,
            self.confidence
        )
    }
}

/// A collection of mined rules together with the statistics of the mining
/// run and the `Arc`-shared [`ItemInterner`] that decodes their ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSet {
    /// The mined rules.
    pub rules: Vec<AssociationRule>,
    /// Number of rows the rules were mined over.
    pub num_rows: usize,
    /// The id ↔ (column, bin) mapping of the binned table the rules were
    /// mined from, shared with every consumer of the set.
    interner: Arc<ItemInterner>,
}

impl RuleSet {
    /// Creates a rule set over an interner.
    pub fn new(rules: Vec<AssociationRule>, num_rows: usize, interner: Arc<ItemInterner>) -> Self {
        RuleSet {
            rules,
            num_rows,
            interner,
        }
    }

    /// The interner decoding this set's item ids.
    pub fn interner(&self) -> &Arc<ItemInterner> {
        &self.interner
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Retains only rules that use at least one of the given target columns
    /// (the paper's `R*` when target columns are specified).
    pub fn filter_by_target_columns(&self, target_columns: &[usize]) -> RuleSet {
        if target_columns.is_empty() {
            return self.clone();
        }
        RuleSet {
            rules: self
                .rules
                .iter()
                .filter(|r| r.uses_any_column(target_columns))
                .cloned()
                .collect(),
            num_rows: self.num_rows,
            interner: Arc::clone(&self.interner),
        }
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &AssociationRule> {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned() -> BinnedTable {
        let t = Table::builder()
            .column_str("a", vec![Some("x"), Some("x"), Some("y"), Some("y")])
            .column_i64("b", vec![Some(1), Some(1), Some(0), Some(1)])
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    fn item(binned: &BinnedTable, col: &str, row: usize) -> Item {
        let c = binned.column_index(col).unwrap();
        Item::new(c, binned.bin_id(row, c))
    }

    #[test]
    fn item_matching() {
        let bt = binned();
        let i = item(&bt, "a", 0); // a = "x"
        assert!(i.matches(&bt, 0));
        assert!(i.matches(&bt, 1));
        assert!(!i.matches(&bt, 2));
        assert!(i.render(&bt).contains("a="));
    }

    #[test]
    fn column_mask_set_operations() {
        let mut m = ColumnMask::new();
        assert!(m.is_empty());
        m.insert(3);
        m.insert(70); // second word
        m.insert(3); // idempotent
        assert_eq!(m.len(), 2);
        assert!(m.contains(3));
        assert!(m.contains(70));
        assert!(!m.contains(4));
        assert!(!m.contains(500));
        assert_eq!(m.columns(), vec![3, 70]);
        assert!(m.contains_any(&[1, 70]));
        assert!(!m.contains_any(&[1, 2]));

        let small = ColumnMask::from_columns([3usize]);
        let wide = ColumnMask::from_columns([3usize, 70]);
        assert!(small.is_subset_of(&m));
        assert!(wide.is_subset_of(&m));
        assert!(!m.is_subset_of(&small), "extra word must break subset-ness");
        assert_eq!(wide, m, "same columns compare equal");
    }

    #[test]
    fn rule_holds_and_matching_rows() {
        let bt = binned();
        let interner = ItemInterner::from_binned(&bt);
        let rule = AssociationRule::from_items(
            &interner,
            &[item(&bt, "a", 0)],
            &[item(&bt, "b", 0)], // b = 1
            0.5,
            2,
            1.0,
            4.0 / 3.0,
        );
        assert!(rule.holds_for_row(&interner, &bt, 0));
        assert!(rule.holds_for_row(&interner, &bt, 1));
        assert!(!rule.holds_for_row(&interner, &bt, 2));
        assert!(!rule.holds_for_row(&interner, &bt, 3)); // a="y"
        assert_eq!(rule.matching_rows(&interner, &bt), vec![0, 1]);
        assert_eq!(rule.size(), 2);
        assert_eq!(rule.columns(), vec![0, 1]);
        assert!(rule.uses_any_column(&[1]));
        assert!(!rule.uses_any_column(&[5]));
        assert!(rule.render(&interner).contains('→'));
        assert!(rule.render(&interner).contains("a="));
        assert!(rule.to_string().contains("supp"));
        let decoded: Vec<Item> = rule.items(&interner).collect();
        assert_eq!(decoded, vec![item(&bt, "a", 0), item(&bt, "b", 0)]);
    }

    #[test]
    fn ruleset_target_filter() {
        let bt = binned();
        let interner = Arc::new(ItemInterner::from_binned(&bt));
        let r1 = AssociationRule::from_items(
            &interner,
            &[item(&bt, "a", 0)],
            &[item(&bt, "b", 0)],
            0.5,
            2,
            1.0,
            1.0,
        );
        let r2 = AssociationRule::from_items(
            &interner,
            &[item(&bt, "a", 2)],
            &[item(&bt, "a", 2)],
            0.5,
            2,
            1.0,
            1.0,
        );
        let rs = RuleSet::new(vec![r1, r2], 4, Arc::clone(&interner));
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        let filtered = rs.filter_by_target_columns(&[1]);
        assert_eq!(filtered.len(), 1);
        let unchanged = rs.filter_by_target_columns(&[]);
        assert_eq!(unchanged.len(), 2);
        assert!(Arc::ptr_eq(filtered.interner(), rs.interner()));
    }
}
