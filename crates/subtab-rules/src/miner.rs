//! End-to-end rule mining with the paper's parameters.

use crate::apriori::{frequent_itemsets, support_count, FrequentItemset};
use crate::rule::{AssociationRule, Item, RuleSet};
use serde::{Deserialize, Serialize};
use subtab_binning::BinnedTable;

/// Parameters of the rule-mining step.
///
/// The defaults match the paper's experimental setup (Section 6.1): support
/// threshold 0.1, confidence threshold 0.6, minimum rule size 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiningConfig {
    /// Minimum support (fraction of rows) of a rule.
    pub min_support: f64,
    /// Minimum confidence of a rule.
    pub min_confidence: f64,
    /// Minimum number of items in a rule (antecedent + consequent).
    pub min_rule_size: usize,
    /// Maximum number of items in a rule. Bounds the Apriori lattice depth;
    /// the paper's figures use rules of size 3–4.
    pub max_rule_size: usize,
    /// Maximum number of rules kept (highest-support first). `0` = unlimited.
    pub max_rules: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_support: 0.1,
            min_confidence: 0.6,
            min_rule_size: 3,
            max_rule_size: 4,
            max_rules: 0,
        }
    }
}

/// Apriori-based association-rule miner.
#[derive(Debug, Clone, Default)]
pub struct RuleMiner {
    config: MiningConfig,
}

impl RuleMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MiningConfig) -> Self {
        RuleMiner { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &MiningConfig {
        &self.config
    }

    /// Mines association rules over all rows of `binned`.
    pub fn mine(&self, binned: &BinnedTable) -> RuleSet {
        let rows: Vec<usize> = (0..binned.num_rows()).collect();
        let rules = self.mine_rows(binned, &rows);
        RuleSet::new(rules, binned.num_rows())
    }

    /// Mines rules separately within each bin of each target column and pools
    /// the results, following Section 6.1 of the paper ("when target columns
    /// are selected by the user, the data is split according to the binned
    /// values of the target columns; the rules are then mined over each subset
    /// separately"). Only rules that actually use a target column are kept.
    pub fn mine_with_targets(&self, binned: &BinnedTable, target_columns: &[usize]) -> RuleSet {
        if target_columns.is_empty() {
            return self.mine(binned);
        }
        let mut all: Vec<AssociationRule> = Vec::new();
        for &tc in target_columns {
            for bin in 0..binned.num_bins(tc) {
                let rows: Vec<usize> = (0..binned.num_rows())
                    .filter(|&r| binned.bin_id(r, tc) as usize == bin)
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                let mut rules = self.mine_rows(binned, &rows);
                // Keep only rules mentioning a target column; the split
                // guarantees the target item is constant within the subset, so
                // add it to the consequent when missing.
                let target_item = Item::new(tc, bin as subtab_binning::BinId);
                for rule in &mut rules {
                    if !rule.uses_any_column(target_columns) {
                        rule.consequent.push(target_item);
                        rule.consequent.sort_unstable();
                    }
                }
                all.extend(rules);
            }
        }
        // Recompute global support over the full table for comparability and
        // deduplicate identical rules.
        let full_rows: Vec<usize> = (0..binned.num_rows()).collect();
        for rule in &mut all {
            let items: Vec<Item> = rule.items().copied().collect();
            rule.support_count = support_count(binned, &items, &full_rows);
            rule.support = rule.support_count as f64 / binned.num_rows().max(1) as f64;
        }
        all.sort_by(|a, b| {
            a.antecedent
                .cmp(&b.antecedent)
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        all.dedup_by(|a, b| a.antecedent == b.antecedent && a.consequent == b.consequent);
        let rules = self.cap(all);
        RuleSet::new(rules, binned.num_rows())
    }

    fn mine_rows(&self, binned: &BinnedTable, rows: &[usize]) -> Vec<AssociationRule> {
        let cfg = &self.config;
        let levels = frequent_itemsets(binned, cfg.min_support, cfg.max_rule_size, Some(rows));
        let mut rules = Vec::new();
        for level in levels.iter().skip(cfg.min_rule_size.saturating_sub(1)) {
            for itemset in level {
                if itemset.items.len() < cfg.min_rule_size {
                    continue;
                }
                rules.extend(self.rules_from_itemset(binned, rows, itemset, &levels));
            }
        }
        self.cap(rules)
    }

    fn cap(&self, mut rules: Vec<AssociationRule>) -> Vec<AssociationRule> {
        rules.sort_by(|a, b| {
            b.support
                .total_cmp(&a.support)
                .then_with(|| b.confidence.total_cmp(&a.confidence))
                .then_with(|| a.antecedent.cmp(&b.antecedent))
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        if self.config.max_rules > 0 && rules.len() > self.config.max_rules {
            rules.truncate(self.config.max_rules);
        }
        rules
    }

    /// Generates all rules `A → C` from a frequent itemset with non-empty
    /// antecedent and consequent, meeting the confidence threshold.
    fn rules_from_itemset(
        &self,
        binned: &BinnedTable,
        rows: &[usize],
        itemset: &FrequentItemset,
        levels: &[Vec<FrequentItemset>],
    ) -> Vec<AssociationRule> {
        let n = rows.len() as f64;
        let items = &itemset.items;
        let k = items.len();
        let mut rules = Vec::new();
        // Enumerate non-empty proper subsets as consequents via bitmasks.
        // Rule sizes are small (≤ max_rule_size ≤ ~5), so this is cheap.
        for mask in 1u32..((1u32 << k) - 1) {
            let mut antecedent = Vec::new();
            let mut consequent = Vec::new();
            for (i, &item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    consequent.push(item);
                } else {
                    antecedent.push(item);
                }
            }
            let ante_count = lookup_count(levels, &antecedent)
                .unwrap_or_else(|| support_count(binned, &antecedent, rows));
            if ante_count == 0 {
                continue;
            }
            let confidence = itemset.count as f64 / ante_count as f64;
            if confidence < self.config.min_confidence {
                continue;
            }
            let cons_count = lookup_count(levels, &consequent)
                .unwrap_or_else(|| support_count(binned, &consequent, rows));
            let cons_support = cons_count as f64 / n;
            let lift = if cons_support > 0.0 {
                confidence / cons_support
            } else {
                0.0
            };
            rules.push(AssociationRule {
                antecedent,
                consequent,
                support: itemset.count as f64 / n,
                support_count: itemset.count,
                confidence,
                lift,
            });
        }
        rules
    }
}

fn lookup_count(levels: &[Vec<FrequentItemset>], items: &[Item]) -> Option<usize> {
    let level = levels.get(items.len().checked_sub(1)?)?;
    level
        .binary_search_by(|fi| fi.items.as_slice().cmp(items))
        .ok()
        .map(|idx| level[idx].count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    /// Table with a strong 3-column pattern: cancelled flights are in 2015
    /// with NaN departure time; non-cancelled flights have a departure time.
    fn flights_binned() -> BinnedTable {
        let mut cancelled = Vec::new();
        let mut dep = Vec::new();
        let mut year = Vec::new();
        let mut sched = Vec::new();
        for i in 0..40 {
            if i < 16 {
                cancelled.push(Some(1));
                dep.push(None);
                year.push(Some(2015));
                sched.push(Some(if i % 2 == 0 { "afternoon" } else { "morning" }));
            } else {
                cancelled.push(Some(0));
                dep.push(Some(if i % 2 == 0 { "morning" } else { "evening" }));
                year.push(Some(if i % 8 == 0 { 2016 } else { 2015 }));
                sched.push(Some(if i % 2 == 0 { "morning" } else { "evening" }));
            }
        }
        let t = Table::builder()
            .column_i64("cancelled", cancelled)
            .column_str("dep_time", dep)
            .column_i64("year", year)
            .column_str("sched_dep", sched)
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    #[test]
    fn mines_the_planted_pattern() {
        let bt = flights_binned();
        let rules = RuleMiner::new(MiningConfig::default()).mine(&bt);
        assert!(!rules.is_empty());
        let c = bt.column_index("cancelled").unwrap();
        let d = bt.column_index("dep_time").unwrap();
        let y = bt.column_index("year").unwrap();
        // Some rule must connect cancelled, dep_time and year.
        let found = rules.iter().any(|r| {
            let cols = r.columns();
            cols.contains(&c) && cols.contains(&d) && cols.contains(&y)
        });
        assert!(found, "expected the planted 3-column rule to be mined");
    }

    #[test]
    fn thresholds_are_respected() {
        let bt = flights_binned();
        let cfg = MiningConfig::default();
        let rules = RuleMiner::new(cfg.clone()).mine(&bt);
        for r in rules.iter() {
            assert!(r.support >= cfg.min_support - 1e-12);
            assert!(r.confidence >= cfg.min_confidence - 1e-12);
            assert!(r.size() >= cfg.min_rule_size);
            assert!(r.size() <= cfg.max_rule_size);
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
            // No column repeated within a rule.
            let cols = r.columns();
            assert_eq!(cols.len(), r.size());
        }
    }

    #[test]
    fn higher_support_threshold_yields_fewer_rules() {
        let bt = flights_binned();
        let low = RuleMiner::new(MiningConfig {
            min_support: 0.1,
            ..Default::default()
        })
        .mine(&bt);
        let high = RuleMiner::new(MiningConfig {
            min_support: 0.3,
            ..Default::default()
        })
        .mine(&bt);
        assert!(high.len() <= low.len());
    }

    #[test]
    fn higher_confidence_threshold_yields_fewer_rules() {
        let bt = flights_binned();
        let low = RuleMiner::new(MiningConfig {
            min_confidence: 0.5,
            ..Default::default()
        })
        .mine(&bt);
        let high = RuleMiner::new(MiningConfig {
            min_confidence: 0.9,
            ..Default::default()
        })
        .mine(&bt);
        assert!(high.len() <= low.len());
    }

    #[test]
    fn max_rules_cap() {
        let bt = flights_binned();
        let capped = RuleMiner::new(MiningConfig {
            max_rules: 3,
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(&bt);
        assert!(capped.len() <= 3);
    }

    #[test]
    fn rule_support_matches_manual_count() {
        let bt = flights_binned();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(&bt);
        for r in rules.iter().take(10) {
            let manual = r.matching_rows(&bt).len();
            assert_eq!(manual, r.support_count);
            assert!((r.support - manual as f64 / bt.num_rows() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn target_mining_only_keeps_rules_with_target() {
        let bt = flights_binned();
        let c = bt.column_index("cancelled").unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine_with_targets(&bt, &[c]);
        assert!(!rules.is_empty());
        for r in rules.iter() {
            assert!(r.uses_any_column(&[c]));
        }
    }

    #[test]
    fn target_mining_with_empty_targets_equals_plain_mining() {
        let bt = flights_binned();
        let miner = RuleMiner::new(MiningConfig::default());
        let a = miner.mine(&bt);
        let b = miner.mine_with_targets(&bt, &[]);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn empty_table_yields_no_rules() {
        let t = Table::builder()
            .column_i64("x", Vec::new())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig::default()).mine(&bt);
        assert!(rules.is_empty());
    }
}
