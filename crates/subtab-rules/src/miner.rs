//! End-to-end rule mining with the paper's parameters.
//!
//! Two mining engines share one rule-generation step, so their output is
//! identical rule for rule:
//!
//! * the **vertical bitmap engine** ([`crate::bitmap`]) — the production
//!   path: per-item row bitmaps, popcount supports, column-ordered prefix
//!   extension, optional scoped-thread fan-out;
//! * the **Apriori reference twin** ([`crate::apriori`]) — the preserved
//!   seed architecture (level-wise candidates, one row scan per candidate),
//!   kept as the correctness oracle for the equivalence suite and as the
//!   comparator the `rules` benchmark quotes speedups against.

use crate::apriori::{self, FrequentItemset};
use crate::bitmap::{self, parallel_map_indexed, VerticalIndex};
use crate::interner::{ItemId, ItemInterner};
use crate::rule::{AssociationRule, ColumnMask, RuleSet};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use subtab_binning::BinnedTable;

/// Parameters of the rule-mining step.
///
/// The defaults match the paper's experimental setup (Section 6.1): support
/// threshold 0.1, confidence threshold 0.6, minimum rule size 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiningConfig {
    /// Minimum support (fraction of rows) of a rule.
    pub min_support: f64,
    /// Minimum confidence of a rule.
    pub min_confidence: f64,
    /// Minimum number of items in a rule (antecedent + consequent).
    pub min_rule_size: usize,
    /// Maximum number of items in a rule. Bounds the lattice depth; the
    /// paper's figures use rules of size 3–4.
    pub max_rule_size: usize,
    /// Maximum number of rules kept. `0` = unlimited.
    ///
    /// Truncation is fully deterministic: rules are ordered by support
    /// (descending), then confidence (descending), then ascending
    /// antecedent and consequent item ids. The id tie-break makes the kept
    /// set — and its order — independent of engine, thread count and run,
    /// even when many rules share a support/confidence pair.
    pub max_rules: usize,
    /// Worker threads for the bitmap engine (`0` = all available cores,
    /// `1` = sequential). Plain mining fans out over lattice root subtrees;
    /// target mining fans out over (target column, bin) partitions. The
    /// mined rules are identical at every thread count.
    pub threads: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_support: 0.1,
            min_confidence: 0.6,
            min_rule_size: 3,
            max_rule_size: 4,
            max_rules: 0,
            threads: 1,
        }
    }
}

impl MiningConfig {
    /// Sets the worker-thread count of the bitmap engine.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Which frequent-itemset engine a mining run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Level-wise reference twin (always sequential).
    Apriori,
    /// Vertical bitmap miner (production path).
    Bitmap,
}

/// Association-rule miner over binned tables.
#[derive(Debug, Clone, Default)]
pub struct RuleMiner {
    config: MiningConfig,
}

impl RuleMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MiningConfig) -> Self {
        RuleMiner { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &MiningConfig {
        &self.config
    }

    /// Mines association rules over all rows of `binned` with the vertical
    /// bitmap engine.
    pub fn mine(&self, binned: &BinnedTable) -> RuleSet {
        self.mine_with_engine(binned, Engine::Bitmap)
    }

    /// Mines with the preserved Apriori reference twin. Produces the exact
    /// same rule set as [`RuleMiner::mine`] (same rules, supports,
    /// confidences and order); exists as the correctness oracle and the
    /// benchmark comparator.
    pub fn mine_apriori(&self, binned: &BinnedTable) -> RuleSet {
        self.mine_with_engine(binned, Engine::Apriori)
    }

    fn mine_with_engine(&self, binned: &BinnedTable, engine: Engine) -> RuleSet {
        let interner = Arc::new(ItemInterner::from_binned(binned));
        let rules = self.mine_rows(binned, &interner, None, engine, self.config.threads);
        RuleSet::new(rules, binned.num_rows(), interner)
    }

    /// Mines rules separately within each bin of each target column and pools
    /// the results, following Section 6.1 of the paper ("when target columns
    /// are selected by the user, the data is split according to the binned
    /// values of the target columns; the rules are then mined over each subset
    /// separately"). Only rules that actually use a target column are kept.
    /// Partitions fan out across the configured worker threads.
    pub fn mine_with_targets(&self, binned: &BinnedTable, target_columns: &[usize]) -> RuleSet {
        self.mine_with_targets_engine(binned, target_columns, Engine::Bitmap)
    }

    /// Target mining through the Apriori reference twin (sequential); the
    /// oracle counterpart of [`RuleMiner::mine_with_targets`].
    pub fn mine_with_targets_apriori(
        &self,
        binned: &BinnedTable,
        target_columns: &[usize],
    ) -> RuleSet {
        self.mine_with_targets_engine(binned, target_columns, Engine::Apriori)
    }

    fn mine_with_targets_engine(
        &self,
        binned: &BinnedTable,
        target_columns: &[usize],
        engine: Engine,
    ) -> RuleSet {
        if target_columns.is_empty() {
            return self.mine_with_engine(binned, engine);
        }
        let interner = Arc::new(ItemInterner::from_binned(binned));
        // One pass per target column builds every bin's row list at once
        // (the codes slice is scanned exactly once per target, not once per
        // (target, bin) pair).
        let mut partitions: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        for &tc in target_columns {
            let mut bins: Vec<Vec<usize>> = vec![Vec::new(); binned.num_bins(tc)];
            for (r, &code) in binned.codes(tc).iter().enumerate() {
                bins[code as usize].push(r);
            }
            for (bin, rows) in bins.into_iter().enumerate() {
                if !rows.is_empty() {
                    partitions.push((tc, bin, rows));
                }
            }
        }

        // Mine every partition; the bitmap engine fans partitions out across
        // scoped workers, each partition mined sequentially. Results land in
        // the partition's slot, so pooling order — and therefore the final
        // rule set — is independent of scheduling.
        let mine_partition = |(tc, bin, rows): &(usize, usize, Vec<usize>)| {
            let mut rules = self.mine_rows(binned, &interner, Some(rows), engine, 1);
            // Keep only rules mentioning a target column; the split
            // guarantees the target item is constant within the subset, so
            // add it to the consequent when missing.
            let target_id = interner.id_of(*tc, *bin as subtab_binning::BinId);
            for rule in &mut rules {
                if !rule.uses_any_column(target_columns) {
                    rule.consequent.push(target_id);
                    rule.consequent.sort_unstable();
                    rule.column_mask.insert(*tc);
                }
            }
            rules
        };
        let threads = match engine {
            Engine::Apriori => 1,
            Engine::Bitmap => self.config.threads,
        };
        let mut all: Vec<AssociationRule> = parallel_map_indexed(threads, partitions.len(), |i| {
            mine_partition(&partitions[i])
        })
        .into_iter()
        .flatten()
        .collect();

        // Deduplicate identical `(antecedent, consequent)` pairs in one hash
        // pass — partitions overlap on rules that don't mention the split
        // column, and the first partition's copy wins, exactly as the old
        // sort-then-dedup kept the first occurrence under a stable sort.
        // Deduplicating *before* the global recompute means each distinct
        // rule is recounted once, and the deterministic output order below
        // needs a single sort (the old pooled path sorted twice).
        let mut seen: std::collections::HashSet<(Vec<ItemId>, Vec<ItemId>)> =
            std::collections::HashSet::with_capacity(all.len());
        all.retain(|r| seen.insert((r.antecedent.clone(), r.consequent.clone())));

        // Recompute global support over the full table for comparability.
        // The bitmap engine ANDs full-table item bitmaps; the twin keeps its
        // per-rule row scans.
        let n = binned.num_rows().max(1) as f64;
        match engine {
            Engine::Bitmap => {
                let vertical = VerticalIndex::build(binned, &interner, None);
                let mut scratch = crate::bitmap::RowBitmap::zeros(binned.num_rows());
                for rule in &mut all {
                    rule.support_count = vertical
                        .support_count_into(rule.item_ids(), &mut scratch)
                        .expect("rules are never empty");
                    rule.support = rule.support_count as f64 / n;
                }
            }
            Engine::Apriori => {
                let full_rows: Vec<usize> = (0..binned.num_rows()).collect();
                for rule in &mut all {
                    let items: Vec<ItemId> = rule.item_ids().collect();
                    rule.support_count =
                        apriori::support_count(binned, &interner, &items, &full_rows);
                    rule.support = rule.support_count as f64 / n;
                }
            }
        }
        let rules = self.cap(all);
        RuleSet::new(rules, binned.num_rows(), interner)
    }

    fn mine_rows(
        &self,
        binned: &BinnedTable,
        interner: &ItemInterner,
        rows: Option<&[usize]>,
        engine: Engine,
        threads: usize,
    ) -> Vec<AssociationRule> {
        let cfg = &self.config;
        let levels = match engine {
            Engine::Apriori => apriori::frequent_itemsets(
                binned,
                interner,
                cfg.min_support,
                cfg.max_rule_size,
                rows,
            ),
            Engine::Bitmap => bitmap::frequent_itemsets_bitmap(
                binned,
                interner,
                cfg.min_support,
                cfg.max_rule_size,
                rows,
                threads,
            ),
        };
        let n = rows.map_or(binned.num_rows(), <[usize]>::len);
        let mut rules = Vec::new();
        // One pair of split buffers for the whole run: candidate splits that
        // fail the confidence threshold allocate nothing.
        let mut scratch = SplitScratch::default();
        for level in levels.iter().skip(cfg.min_rule_size.saturating_sub(1)) {
            for itemset in level {
                if itemset.items.len() < cfg.min_rule_size {
                    continue;
                }
                self.rules_from_itemset(
                    binned,
                    interner,
                    n,
                    rows,
                    itemset,
                    &levels,
                    &mut scratch,
                    &mut rules,
                );
            }
        }
        self.cap(rules)
    }

    /// Sorts by (support desc, confidence desc, antecedent ids, consequent
    /// ids) — a total order over distinct rules, so truncation under
    /// `max_rules` keeps a deterministic set in a deterministic order (see
    /// [`MiningConfig::max_rules`]).
    fn cap(&self, mut rules: Vec<AssociationRule>) -> Vec<AssociationRule> {
        rules.sort_by(|a, b| {
            b.support
                .total_cmp(&a.support)
                .then_with(|| b.confidence.total_cmp(&a.confidence))
                .then_with(|| a.antecedent.cmp(&b.antecedent))
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        if self.config.max_rules > 0 && rules.len() > self.config.max_rules {
            rules.truncate(self.config.max_rules);
        }
        rules
    }

    /// Generates all rules `A → C` from a frequent itemset with non-empty
    /// antecedent and consequent, meeting the confidence threshold. Shared
    /// by both engines: subset supports come from the (identical) frequent
    /// levels, so the resulting statistics are bit-equal.
    #[allow(clippy::too_many_arguments)]
    fn rules_from_itemset(
        &self,
        binned: &BinnedTable,
        interner: &ItemInterner,
        n: usize,
        rows: Option<&[usize]>,
        itemset: &FrequentItemset,
        levels: &[Vec<FrequentItemset>],
        scratch: &mut SplitScratch,
        out: &mut Vec<AssociationRule>,
    ) {
        let nf = n as f64;
        let items = &itemset.items;
        let k = items.len();
        // Every proper subset of a frequent itemset is frequent
        // (anti-monotonicity), so `lookup_count` almost always hits; the
        // scan fallback only exists for defensive completeness.
        let count_of = |subset: &[ItemId]| {
            lookup_count(levels, subset).unwrap_or_else(|| {
                let all_rows: Vec<usize>;
                let rows = match rows {
                    Some(r) => r,
                    None => {
                        all_rows = (0..binned.num_rows()).collect();
                        &all_rows
                    }
                };
                apriori::support_count(binned, interner, subset, rows)
            })
        };
        // One column mask per itemset: every antecedent/consequent split
        // shares it.
        let column_mask = ColumnMask::from_columns(items.iter().map(|&id| interner.column_of(id)));
        // Enumerate non-empty proper subsets as consequents via bitmasks.
        // Rule sizes are small (≤ max_rule_size ≤ ~5), so this is cheap.
        // Splits land in the reusable scratch buffers; the owned item
        // vectors are only allocated once a split has passed every
        // threshold, so rejected candidates are allocation-free.
        for mask in 1u32..((1u32 << k) - 1) {
            scratch.antecedent.clear();
            scratch.consequent.clear();
            for (i, &item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    scratch.consequent.push(item);
                } else {
                    scratch.antecedent.push(item);
                }
            }
            let ante_count = count_of(&scratch.antecedent);
            if ante_count == 0 {
                continue;
            }
            let confidence = itemset.count as f64 / ante_count as f64;
            if confidence < self.config.min_confidence {
                continue;
            }
            let cons_count = count_of(&scratch.consequent);
            let cons_support = cons_count as f64 / nf;
            let lift = if cons_support > 0.0 {
                confidence / cons_support
            } else {
                0.0
            };
            out.push(AssociationRule {
                antecedent: scratch.antecedent.clone(),
                consequent: scratch.consequent.clone(),
                column_mask: column_mask.clone(),
                support: itemset.count as f64 / nf,
                support_count: itemset.count,
                confidence,
                lift,
            });
        }
    }
}

/// Reusable antecedent/consequent split buffers for rule generation.
#[derive(Debug, Default)]
struct SplitScratch {
    antecedent: Vec<ItemId>,
    consequent: Vec<ItemId>,
}

fn lookup_count(levels: &[Vec<FrequentItemset>], items: &[ItemId]) -> Option<usize> {
    let level = levels.get(items.len().checked_sub(1)?)?;
    level
        .binary_search_by(|fi| fi.items.as_slice().cmp(items))
        .ok()
        .map(|idx| level[idx].count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    /// Table with a strong 3-column pattern: cancelled flights are in 2015
    /// with NaN departure time; non-cancelled flights have a departure time.
    fn flights_binned() -> BinnedTable {
        let mut cancelled = Vec::new();
        let mut dep = Vec::new();
        let mut year = Vec::new();
        let mut sched = Vec::new();
        for i in 0..40 {
            if i < 16 {
                cancelled.push(Some(1));
                dep.push(None);
                year.push(Some(2015));
                sched.push(Some(if i % 2 == 0 { "afternoon" } else { "morning" }));
            } else {
                cancelled.push(Some(0));
                dep.push(Some(if i % 2 == 0 { "morning" } else { "evening" }));
                year.push(Some(if i % 8 == 0 { 2016 } else { 2015 }));
                sched.push(Some(if i % 2 == 0 { "morning" } else { "evening" }));
            }
        }
        let t = Table::builder()
            .column_i64("cancelled", cancelled)
            .column_str("dep_time", dep)
            .column_i64("year", year)
            .column_str("sched_dep", sched)
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    #[test]
    fn mines_the_planted_pattern() {
        let bt = flights_binned();
        let rules = RuleMiner::new(MiningConfig::default()).mine(&bt);
        assert!(!rules.is_empty());
        let c = bt.column_index("cancelled").unwrap();
        let d = bt.column_index("dep_time").unwrap();
        let y = bt.column_index("year").unwrap();
        // Some rule must connect cancelled, dep_time and year.
        let found = rules.iter().any(|r| {
            let cols = r.columns();
            cols.contains(&c) && cols.contains(&d) && cols.contains(&y)
        });
        assert!(found, "expected the planted 3-column rule to be mined");
    }

    #[test]
    fn thresholds_are_respected() {
        let bt = flights_binned();
        let cfg = MiningConfig::default();
        let rules = RuleMiner::new(cfg.clone()).mine(&bt);
        for r in rules.iter() {
            assert!(r.support >= cfg.min_support - 1e-12);
            assert!(r.confidence >= cfg.min_confidence - 1e-12);
            assert!(r.size() >= cfg.min_rule_size);
            assert!(r.size() <= cfg.max_rule_size);
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
            // No column repeated within a rule.
            let cols = r.columns();
            assert_eq!(cols.len(), r.size());
        }
    }

    #[test]
    fn apriori_twin_produces_the_same_rules() {
        let bt = flights_binned();
        for cfg in [
            MiningConfig::default(),
            MiningConfig {
                min_rule_size: 2,
                min_support: 0.2,
                ..Default::default()
            },
        ] {
            let miner = RuleMiner::new(cfg);
            let bitmap = miner.mine(&bt);
            let apriori = miner.mine_apriori(&bt);
            assert_eq!(bitmap.rules, apriori.rules);
        }
    }

    #[test]
    fn higher_support_threshold_yields_fewer_rules() {
        let bt = flights_binned();
        let low = RuleMiner::new(MiningConfig {
            min_support: 0.1,
            ..Default::default()
        })
        .mine(&bt);
        let high = RuleMiner::new(MiningConfig {
            min_support: 0.3,
            ..Default::default()
        })
        .mine(&bt);
        assert!(high.len() <= low.len());
    }

    #[test]
    fn higher_confidence_threshold_yields_fewer_rules() {
        let bt = flights_binned();
        let low = RuleMiner::new(MiningConfig {
            min_confidence: 0.5,
            ..Default::default()
        })
        .mine(&bt);
        let high = RuleMiner::new(MiningConfig {
            min_confidence: 0.9,
            ..Default::default()
        })
        .mine(&bt);
        assert!(high.len() <= low.len());
    }

    #[test]
    fn max_rules_cap() {
        let bt = flights_binned();
        let capped = RuleMiner::new(MiningConfig {
            max_rules: 3,
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(&bt);
        assert!(capped.len() <= 3);
    }

    #[test]
    fn truncation_tie_break_is_deterministic() {
        let bt = flights_binned();
        let cfg = MiningConfig {
            max_rules: 5,
            min_rule_size: 2,
            min_support: 0.15,
            min_confidence: 0.5,
            ..Default::default()
        };
        let reference = RuleMiner::new(cfg.clone()).mine(&bt);
        // Same capped set and order from the twin engine and at any thread
        // count, even with equal-support/equal-confidence rules in play.
        assert_eq!(
            RuleMiner::new(cfg.clone()).mine_apriori(&bt).rules,
            reference.rules
        );
        for threads in [2, 4] {
            let threaded = RuleMiner::new(cfg.clone().with_threads(threads)).mine(&bt);
            assert_eq!(threaded.rules, reference.rules, "threads = {threads}");
        }
        // The documented order: support desc, confidence desc, then ids.
        for pair in reference.rules.windows(2) {
            let ord = pair[1]
                .support
                .total_cmp(&pair[0].support)
                .then_with(|| pair[1].confidence.total_cmp(&pair[0].confidence))
                .then_with(|| pair[0].antecedent.cmp(&pair[1].antecedent))
                .then_with(|| pair[0].consequent.cmp(&pair[1].consequent));
            assert!(ord != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn rule_support_matches_manual_count() {
        let bt = flights_binned();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(&bt);
        for r in rules.iter().take(10) {
            let manual = r.matching_rows(rules.interner(), &bt).len();
            assert_eq!(manual, r.support_count);
            assert!((r.support - manual as f64 / bt.num_rows() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn target_mining_only_keeps_rules_with_target() {
        let bt = flights_binned();
        let c = bt.column_index("cancelled").unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine_with_targets(&bt, &[c]);
        assert!(!rules.is_empty());
        for r in rules.iter() {
            assert!(r.uses_any_column(&[c]));
        }
    }

    #[test]
    fn target_mining_matches_the_apriori_twin_at_any_thread_count() {
        let bt = flights_binned();
        let c = bt.column_index("cancelled").unwrap();
        let y = bt.column_index("year").unwrap();
        let cfg = MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        };
        let oracle = RuleMiner::new(cfg.clone()).mine_with_targets_apriori(&bt, &[c, y]);
        for threads in [1, 2, 4] {
            let got =
                RuleMiner::new(cfg.clone().with_threads(threads)).mine_with_targets(&bt, &[c, y]);
            assert_eq!(got.rules, oracle.rules, "threads = {threads}");
        }
    }

    #[test]
    fn target_mining_with_empty_targets_equals_plain_mining() {
        let bt = flights_binned();
        let miner = RuleMiner::new(MiningConfig::default());
        let a = miner.mine(&bt);
        let b = miner.mine_with_targets(&bt, &[]);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn empty_table_yields_no_rules() {
        let t = Table::builder()
            .column_i64("x", Vec::new())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig::default()).mine(&bt);
        assert!(rules.is_empty());
    }
}
