//! # subtab-rules
//!
//! Association-rule mining over binned tables (Definition 3.4 of the SubTab
//! paper).
//!
//! The paper measures sub-table quality against a set of *prominent*
//! association rules mined from the binned input table (it uses the
//! `efficient-apriori` Python package with support 0.1, confidence 0.6 and
//! minimum rule size 3). This crate reimplements that pipeline on **dense
//! integer items**:
//!
//! * [`ItemInterner`] / [`ItemId`] — every (column, bin) pair becomes a
//!   dense, column-major `u32` id derived from the binned table's shape;
//!   display strings live behind an `Arc` for the cold API,
//! * [`bitmap`] — the production engine: per-item row bitmaps, popcount
//!   supports, column-ordered prefix extension, scoped-thread fan-out,
//! * [`apriori`] — the preserved level-wise reference twin whose output the
//!   bitmap engine is pinned to (the equivalence suite asserts identity),
//! * [`AssociationRule`] / [`RuleSet`] — sorted id slices plus a per-rule
//!   [`ColumnMask`], with supports, confidences and lifts,
//! * [`RuleMiner`] — the end-to-end miner with the paper's parameters,
//!   including the target-column handling of Section 6.1 (when target
//!   columns are selected, the data is partitioned by the binned target
//!   value and rules are mined per partition, in parallel).
//!
//! ```
//! use subtab_data::Table;
//! use subtab_binning::{Binner, BinningConfig};
//! use subtab_rules::{RuleMiner, MiningConfig};
//!
//! // Cancelled flights have missing departure times: a 2-column pattern.
//! let table = Table::builder()
//!     .column_f64("dep_time", vec![None, None, Some(930.0), Some(1450.0)])
//!     .column_i64("cancelled", vec![Some(1), Some(1), Some(0), Some(0)])
//!     .build()
//!     .unwrap();
//! let binner = Binner::fit(&table, &BinningConfig::default()).unwrap();
//! let binned = binner.apply(&table).unwrap();
//! let config = MiningConfig { min_rule_size: 2, ..MiningConfig::default() };
//! let rules = RuleMiner::new(config).mine(&binned);
//! assert!(!rules.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod apriori;
pub mod bitmap;
pub mod interner;
pub mod miner;
pub mod rule;

pub use bitmap::RowBitmap;
pub use interner::{ItemId, ItemInterner};
pub use miner::{MiningConfig, RuleMiner};
pub use rule::{AssociationRule, ColumnMask, Item, RuleSet};
