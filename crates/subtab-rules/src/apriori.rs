//! Level-wise (Apriori) frequent-itemset mining over a binned table — the
//! preserved reference twin of the vertical bitmap miner.
//!
//! Rows of the binned table play the role of transactions; the items of a
//! row are its (column, bin) pairs — interned as dense ids — so every
//! transaction has exactly one item per column and candidate itemsets never
//! contain two items from the same column. This is the "quantitative
//! association rules" setting of Srikant & Agrawal that the paper builds
//! on.
//!
//! This module keeps the seed architecture on purpose: level-wise candidate
//! generation with hash-map counting at level 1 and one full row scan per
//! candidate afterwards. [`crate::bitmap::frequent_itemsets_bitmap`] is the
//! production path; its output is pinned identical to this one, and the
//! `rules` benchmark quotes its speedup against this twin.

use crate::interner::{ItemId, ItemInterner};
use std::collections::HashMap;
use subtab_binning::BinnedTable;

/// A frequent itemset together with its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The item ids, ascending (ids are column-major, so this is also
    /// (column, bin) order).
    pub items: Vec<ItemId>,
    /// Number of rows containing all the items.
    pub count: usize,
}

impl FrequentItemset {
    /// Support as a fraction of the given row count.
    pub fn support(&self, num_rows: usize) -> f64 {
        if num_rows == 0 {
            0.0
        } else {
            self.count as f64 / num_rows as f64
        }
    }
}

/// Mines all frequent itemsets with support ≥ `min_support` and size ≤
/// `max_size`, restricted to the given row subset (`None` = all rows).
///
/// Returns the itemsets grouped by size: index `k` of the result holds the
/// frequent itemsets of size `k + 1`, each level ascending by item ids.
pub fn frequent_itemsets(
    binned: &BinnedTable,
    interner: &ItemInterner,
    min_support: f64,
    max_size: usize,
    rows: Option<&[usize]>,
) -> Vec<Vec<FrequentItemset>> {
    let all_rows: Vec<usize>;
    let rows: &[usize] = match rows {
        Some(r) => r,
        None => {
            all_rows = (0..binned.num_rows()).collect();
            &all_rows
        }
    };
    let n = rows.len();
    if n == 0 || max_size == 0 {
        return Vec::new();
    }
    let min_count = ((min_support * n as f64).ceil() as usize).max(1);

    // Level 1: frequent single items.
    let mut counts: HashMap<ItemId, usize> = HashMap::new();
    for &r in rows {
        for c in 0..binned.num_columns() {
            *counts
                .entry(interner.row_item_id(binned, r, c))
                .or_insert(0) += 1;
        }
    }
    let mut level: Vec<FrequentItemset> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|(item, count)| FrequentItemset {
            items: vec![item],
            count,
        })
        .collect();
    level.sort_by(|a, b| a.items.cmp(&b.items));

    let mut levels = Vec::new();
    let mut size = 1usize;
    while !level.is_empty() && size <= max_size {
        levels.push(level.clone());
        if size == max_size {
            break;
        }
        // Candidate generation: join itemsets sharing the first k-1 items.
        let mut candidates: Vec<Vec<ItemId>> = Vec::new();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let a = &level[i].items;
                let b = &level[j].items;
                if a[..size - 1] != b[..size - 1] {
                    // The level is sorted, so once prefixes diverge nothing
                    // further down will share the prefix with `a`.
                    break;
                }
                let last_a = a[size - 1];
                let last_b = b[size - 1];
                if interner.column_of(last_a) == interner.column_of(last_b) {
                    // One item per column.
                    continue;
                }
                let mut cand = a.clone();
                cand.push(last_b);
                cand.sort_unstable();
                candidates.push(cand);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        // Support counting: one full row scan per candidate (the seed
        // architecture the bitmap miner replaces).
        let mut next: Vec<FrequentItemset> = Vec::new();
        for cand in candidates {
            let count = support_count(binned, interner, &cand, rows);
            if count >= min_count {
                next.push(FrequentItemset { items: cand, count });
            }
        }
        next.sort_by(|a, b| a.items.cmp(&b.items));
        level = next;
        size += 1;
    }
    levels
}

/// Support count of an arbitrary id set over a row subset, by linear scan
/// (the reference twin of [`crate::bitmap::VerticalIndex::support_count`]).
pub fn support_count(
    binned: &BinnedTable,
    interner: &ItemInterner,
    items: &[ItemId],
    rows: &[usize],
) -> usize {
    let decoded: Vec<crate::rule::Item> = items.iter().map(|&id| interner.item(id)).collect();
    rows.iter()
        .filter(|&&r| decoded.iter().all(|it| it.matches(binned, r)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    /// 8 rows replicating the structure of the paper's example table (Fig. 3):
    /// cancelled flights have NaN departure times, year 2015.
    fn example_binned() -> BinnedTable {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                vec![
                    Some(1),
                    Some(1),
                    Some(1),
                    Some(1),
                    Some(0),
                    Some(0),
                    Some(0),
                    Some(0),
                ],
            )
            .column_str(
                "dep_time",
                vec![
                    None,
                    None,
                    None,
                    None,
                    Some("morning"),
                    Some("morning"),
                    Some("evening"),
                    Some("evening"),
                ],
            )
            .column_i64(
                "year",
                vec![
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2016),
                    Some(2015),
                    Some(2015),
                    Some(2015),
                ],
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    #[test]
    fn single_items_counted_correctly() {
        let bt = example_binned();
        let interner = ItemInterner::from_binned(&bt);
        let levels = frequent_itemsets(&bt, &interner, 0.5, 1, None);
        assert_eq!(levels.len(), 1);
        // cancelled=1 (4 rows), cancelled=0 (4 rows), dep_time=NaN (4 rows),
        // year=2015 (7 rows) all have support >= 0.5.
        assert_eq!(levels[0].len(), 4);
        for fi in &levels[0] {
            assert!(fi.count >= 4);
            assert!(fi.support(8) >= 0.5);
        }
    }

    #[test]
    fn pairs_respect_one_item_per_column() {
        let bt = example_binned();
        let interner = ItemInterner::from_binned(&bt);
        let levels = frequent_itemsets(&bt, &interner, 0.4, 2, None);
        assert_eq!(levels.len(), 2);
        for fi in &levels[1] {
            assert_eq!(fi.items.len(), 2);
            assert_ne!(
                interner.column_of(fi.items[0]),
                interner.column_of(fi.items[1])
            );
        }
        // cancelled=1 ∧ dep_time=NaN must be among the frequent pairs (4 rows).
        let c = bt.column_index("cancelled").unwrap();
        let d = bt.column_index("dep_time").unwrap();
        let has_pair = levels[1].iter().any(|fi| {
            fi.items.iter().any(|&i| interner.column_of(i) == c)
                && fi.items.iter().any(|&i| interner.column_of(i) == d)
                && fi.count == 4
        });
        assert!(has_pair);
    }

    #[test]
    fn triples_found_with_lower_support() {
        let bt = example_binned();
        let interner = ItemInterner::from_binned(&bt);
        let levels = frequent_itemsets(&bt, &interner, 0.4, 3, None);
        assert_eq!(levels.len(), 3);
        // cancelled=1 ∧ dep_time=NaN ∧ year=2015 holds for 4 of 8 rows.
        assert!(levels[2].iter().any(|fi| fi.count == 4));
    }

    #[test]
    fn monotonicity_of_support() {
        let bt = example_binned();
        let interner = ItemInterner::from_binned(&bt);
        let levels = frequent_itemsets(&bt, &interner, 0.3, 3, None);
        // Every level-k itemset's count is at most the count of any subset at
        // level k-1 (anti-monotonicity of support).
        for k in 1..levels.len() {
            for fi in &levels[k] {
                for drop in 0..fi.items.len() {
                    let mut subset = fi.items.clone();
                    subset.remove(drop);
                    let parent = levels[k - 1]
                        .iter()
                        .find(|p| p.items == subset)
                        .expect("subset of a frequent itemset must be frequent");
                    assert!(parent.count >= fi.count);
                }
            }
        }
    }

    #[test]
    fn row_subset_restriction() {
        let bt = example_binned();
        let interner = ItemInterner::from_binned(&bt);
        let cancelled_rows: Vec<usize> = vec![0, 1, 2, 3];
        let levels = frequent_itemsets(&bt, &interner, 0.9, 1, Some(&cancelled_rows));
        // Within cancelled rows, cancelled=1, dep_time=NaN and year=2015 are
        // all frequent at 100%.
        assert_eq!(levels[0].len(), 3);
    }

    #[test]
    fn empty_inputs() {
        let bt = example_binned();
        let interner = ItemInterner::from_binned(&bt);
        assert!(frequent_itemsets(&bt, &interner, 0.5, 0, None).is_empty());
        assert!(frequent_itemsets(&bt, &interner, 0.5, 2, Some(&[])).is_empty());
        // Support > 1.0 finds nothing.
        assert!(frequent_itemsets(&bt, &interner, 1.5, 2, None)
            .first()
            .is_none_or(|l| l.is_empty()));
    }

    #[test]
    fn support_count_helper() {
        let bt = example_binned();
        let interner = ItemInterner::from_binned(&bt);
        let c = bt.column_index("cancelled").unwrap();
        let id = interner.row_item_id(&bt, 0, c);
        let rows: Vec<usize> = (0..bt.num_rows()).collect();
        assert_eq!(support_count(&bt, &interner, &[id], &rows), 4);
        assert_eq!(support_count(&bt, &interner, &[], &rows), 8);
    }
}
