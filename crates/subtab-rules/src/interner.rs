//! Dense integer interning of (column, bin) items.
//!
//! The rule engine works on dense `u32` [`ItemId`]s instead of `(column,
//! bin)` structs or display strings: ids are column-major (`id =
//! offset(column) + bin`), so every id of column `c` lies in
//! `offset(c)..offset(c + 1)` and sorting ids sorts items by `(column,
//! bin)`. The interner is derived from the shape of a [`BinnedTable`]
//! alone, which makes ids canonical for that table: two miners over the
//! same binned table always agree on ids.
//!
//! Display strings for the cold API (rendering rules in the UI) are built
//! once per interner and shared via `Arc`, so the hot mining and
//! highlighting paths never touch a string.

use crate::rule::Item;
use std::sync::Arc;
use subtab_binning::{BinId, BinnedTable};

/// Dense identifier of one (column, bin) item.
pub type ItemId = u32;

/// The id ↔ item mapping of one binned table, plus the rendered display
/// string of every item (shared with every [`crate::RuleSet`] mined from
/// the table).
#[derive(Debug, Default)]
pub struct ItemInterner {
    /// `offsets[c]` is the first id of column `c`; `offsets` has one extra
    /// trailing entry equal to the total item count.
    offsets: Vec<u32>,
    /// Column of every id (O(1) decode on the hot paths).
    columns: Vec<u32>,
    /// Rendered `column=label` token of every id (the cold display API).
    labels: Vec<Arc<str>>,
}

impl ItemInterner {
    /// Builds the interner for a binned table: one id per (column, bin)
    /// pair, column-major.
    pub fn from_binned(binned: &BinnedTable) -> Self {
        let counts = binned.bin_counts();
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c as u32;
            offsets.push(total);
        }
        let mut columns = Vec::with_capacity(total as usize);
        let mut labels = Vec::with_capacity(total as usize);
        for (c, &bins) in counts.iter().enumerate() {
            for b in 0..bins {
                columns.push(c as u32);
                labels.push(Arc::from(binned.token(c, b as BinId).as_str()));
            }
        }
        ItemInterner {
            offsets,
            columns,
            labels,
        }
    }

    /// Total number of interned items (sum of bin counts over all columns).
    pub fn num_items(&self) -> usize {
        self.columns.len()
    }

    /// Number of columns the interner was built over.
    pub fn num_columns(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The id of bin `bin` of column `column`.
    pub fn id_of(&self, column: usize, bin: BinId) -> ItemId {
        self.offsets[column] + bin as ItemId
    }

    /// Decodes an id back to its (column, bin) item.
    pub fn item(&self, id: ItemId) -> Item {
        let column = self.columns[id as usize] as usize;
        Item::new(column, (id - self.offsets[column]) as BinId)
    }

    /// Column of an id.
    pub fn column_of(&self, id: ItemId) -> usize {
        self.columns[id as usize] as usize
    }

    /// First id of the column *after* the column of `id` — the lower bound
    /// for prefix extension, since a transaction holds exactly one item per
    /// column and candidates must never repeat a column.
    pub fn next_column_start(&self, id: ItemId) -> ItemId {
        self.offsets[self.column_of(id) + 1]
    }

    /// The item id of cell (`row`, `col`) of `binned` — the integer
    /// transaction access used by both mining engines and the highlight
    /// probe.
    pub fn row_item_id(&self, binned: &BinnedTable, row: usize, col: usize) -> ItemId {
        self.id_of(col, binned.bin_id(row, col))
    }

    /// Rendered display string of an id, e.g. `distance=[100.000, 550.000)`
    /// (`Arc`-shared; cloning is refcount-only).
    pub fn label(&self, id: ItemId) -> &Arc<str> {
        &self.labels[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned() -> BinnedTable {
        let t = Table::builder()
            .column_str("airline", vec![Some("AA"), Some("DL"), Some("AA"), None])
            .column_i64("cancelled", vec![Some(0), Some(1), Some(0), Some(1)])
            .build()
            .unwrap();
        let b = Binner::fit(&t, &BinningConfig::default()).unwrap();
        b.apply(&t).unwrap()
    }

    #[test]
    fn ids_are_column_major_and_round_trip() {
        let bt = binned();
        let it = ItemInterner::from_binned(&bt);
        assert_eq!(it.num_columns(), 2);
        assert_eq!(
            it.num_items(),
            bt.bin_counts().iter().sum::<usize>(),
            "one id per (column, bin)"
        );
        let mut expected = 0;
        for c in 0..bt.num_columns() {
            for b in 0..bt.num_bins(c) {
                let id = it.id_of(c, b as BinId);
                assert_eq!(id, expected, "ids are dense and column-major");
                expected += 1;
                assert_eq!(it.item(id), Item::new(c, b as BinId));
                assert_eq!(it.column_of(id), c);
                assert_eq!(&**it.label(id), bt.token(c, b as BinId).as_str());
            }
        }
    }

    #[test]
    fn next_column_start_skips_the_own_column() {
        let bt = binned();
        let it = ItemInterner::from_binned(&bt);
        let first_of_col1 = it.id_of(1, 0);
        for b in 0..bt.num_bins(0) {
            assert_eq!(it.next_column_start(it.id_of(0, b as BinId)), first_of_col1);
        }
    }

    #[test]
    fn row_item_ids_match_cell_bins() {
        let bt = binned();
        let it = ItemInterner::from_binned(&bt);
        for r in 0..bt.num_rows() {
            for c in 0..bt.num_columns() {
                let id = it.row_item_id(&bt, r, c);
                assert_eq!(it.item(id), Item::new(c, bt.bin_id(r, c)));
            }
        }
    }
}
