//! Mapping cluster centroids back to actual data points.
//!
//! Sub-tables must contain real rows of the input table (Definition 3.1), so
//! after clustering the row/column vectors, SubTab selects for each centroid
//! the *data point nearest to it* (Algorithm 2: "select their centroids as
//! the rows of T_sub", which in practice means the medoid-like nearest
//! member). When two centroids would pick the same point, the later one takes
//! its next-nearest unused point so that exactly `k` distinct indices are
//! returned.

use crate::distance::squared_euclidean;
use crate::kmeans::{KMeans, KMeansResult};
use crate::matrix::MatrixView;

/// For each centroid of `result`, the index of the nearest point in `points`,
/// with duplicates resolved to the next nearest unused point.
pub fn select_representatives(points: MatrixView, result: &KMeansResult) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::with_capacity(result.centroids.len());
    for centroid in &result.centroids {
        // Linear argmin over the unused points. The original implementation
        // stably argsorted all points by distance and took the first unused
        // one; a strict `<` scan in index order picks the same point (lowest
        // index among the minimal unused distances) in O(n) instead of
        // O(n log n) with a distance evaluation per comparison.
        let mut best: Option<(usize, f32)> = None;
        for (i, p) in points.rows().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let d = squared_euclidean(p, centroid);
            if best.is_none_or(|(_, bd)| d.total_cmp(&bd).is_lt()) {
                best = Some((i, d));
            }
        }
        if let Some((idx, _)) = best {
            chosen.push(idx);
        }
    }
    chosen
}

/// Clusters `points` into `k` clusters and returns the indices of the `k`
/// representative points (fewer if there are fewer points than `k`).
pub fn select_k_representatives(points: MatrixView, k: usize, seed: u64) -> Vec<usize> {
    select_k_representatives_threaded(points, k, seed, 1)
}

/// [`select_k_representatives`] with the k-means assignment step fanned out
/// across `threads` scoped workers (`0` = all available cores).
///
/// The assignment step is read-only per point, so the selection is
/// bit-identical at every thread count; the knob only changes wall time.
pub fn select_k_representatives_threaded(
    points: MatrixView,
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<usize> {
    if k == 0 || points.is_empty() {
        return Vec::new();
    }
    if points.num_rows() <= k {
        return (0..points.num_rows()).collect();
    }
    let result = KMeans::new(k, seed).threads(threads).fit(points);
    select_representatives(points, &result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn representatives_are_distinct_and_one_per_cluster() {
        let mut points = Matrix::with_capacity(30, 2);
        for i in 0..10 {
            points.push_row(&[0.0, i as f32 * 0.01]);
            points.push_row(&[100.0, i as f32 * 0.01]);
            points.push_row(&[-100.0, i as f32 * 0.01]);
        }
        let reps = select_k_representatives(points.view(), 3, 7);
        assert_eq!(reps.len(), 3);
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "representatives must be distinct");
        // One representative per blob.
        let blobs: Vec<i32> = reps
            .iter()
            .map(|&i| {
                if points.row(i)[0] > 50.0 {
                    1
                } else if points.row(i)[0] < -50.0 {
                    -1
                } else {
                    0
                }
            })
            .collect();
        let mut blob_set = blobs.clone();
        blob_set.sort_unstable();
        blob_set.dedup();
        assert_eq!(blob_set.len(), 3);
    }

    #[test]
    fn duplicate_centroids_fall_back_to_unused_points() {
        // All points identical: k-means centroids coincide, but the selected
        // representatives must still be distinct indices.
        let points = Matrix::from_rows(&vec![vec![1.0, 1.0]; 6], 2);
        let reps = select_k_representatives(points.view(), 3, 0);
        assert_eq!(reps.len(), 3);
        let mut sorted = reps;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn fewer_points_than_k_returns_all() {
        let points = Matrix::new(vec![0.0, 1.0], 1);
        let reps = select_k_representatives(points.view(), 10, 0);
        assert_eq!(reps, vec![0, 1]);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Matrix::with_capacity(0, 1);
        assert!(select_k_representatives(empty.view(), 3, 0).is_empty());
        let one = Matrix::new(vec![1.0], 1);
        assert!(select_k_representatives(one.view(), 0, 0).is_empty());
        assert!(select_k_representatives_threaded(empty.view(), 3, 0, 4).is_empty());
    }

    #[test]
    fn threaded_selection_matches_sequential() {
        let mut points = Matrix::with_capacity(1800, 2);
        for i in 0..1800 {
            let blob = (i % 3) as f32;
            points.push_row(&[blob * 40.0 + (i % 9) as f32 * 0.05, blob]);
        }
        let sequential = select_k_representatives(points.view(), 3, 11);
        for threads in [0, 2, 4] {
            assert_eq!(
                sequential,
                select_k_representatives_threaded(points.view(), 3, 11, threads),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn representative_is_the_nearest_member() {
        let points = Matrix::new(vec![0.0, 0.9, 10.0, 10.4], 1);
        let result = KMeans::new(2, 3).fit(points.view());
        let reps = select_representatives(points.view(), &result);
        // Each representative must belong to the cluster whose centroid it
        // represents (i.e. be closest to that centroid among all points).
        for (ci, &rep) in reps.iter().enumerate() {
            let d_rep = squared_euclidean(points.row(rep), &result.centroids[ci]);
            for p in points.view().rows() {
                // Allow ties; the representative is at least as close as any
                // unused point.
                assert!(d_rep <= squared_euclidean(p, &result.centroids[ci]) + 1e-6);
            }
        }
    }
}
