//! # subtab-cluster
//!
//! K-means clustering and centroid-representative selection, the "Selecting
//! step" machinery of the SubTab algorithm (Algorithm 2, lines 11–17) and of
//! the naive-clustering baseline.
//!
//! The crate is deliberately generic: it operates on contiguous row-major
//! point matrices ([`Matrix`] / [`MatrixView`] — one flat `f32` buffer, no
//! heap allocation per point) so that the same code clusters embedding
//! row-vectors, embedding column-vectors and one-hot-encoded rows.
//!
//! * [`matrix`] — the owned/borrowed flat point-matrix types every API
//!   consumes,
//! * [`kmeans`] — Lloyd's algorithm with k-means++ initialisation, empty
//!   cluster repair, deterministic seeding and an optional scoped-thread
//!   fan-out of the assignment step (bit-identical at any thread count),
//! * [`representative`] — mapping centroids back to *actual* data points
//!   (the sub-table must contain real rows of the table, so the row nearest
//!   to each centroid is selected, with duplicates resolved to the next
//!   nearest unused point),
//! * [`distance`] — the Euclidean distance helpers, re-exported from the
//!   shared `subtab-kernels` crate (which also provides the SIMD centroid
//!   scan the assignment step dispatches to).
//!
//! ```
//! use subtab_cluster::{KMeans, Matrix, select_representatives};
//!
//! let points = Matrix::new(
//!     vec![0.0, 0.0, 0.1, 0.0, 10.0, 10.0, 10.1, 9.9],
//!     2,
//! );
//! let result = KMeans::new(2, 42).fit(points.view());
//! let reps = select_representatives(points.view(), &result);
//! assert_eq!(reps.len(), 2);
//! // One representative from each blob.
//! assert_ne!(points.row(reps[0])[0] > 5.0, points.row(reps[1])[0] > 5.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod distance;
pub mod kmeans;
pub mod matrix;
pub mod representative;

pub use distance::{euclidean, squared_euclidean};
pub use kmeans::{assign_points, assign_points_scalar, KMeans, KMeansResult};
pub use matrix::{Matrix, MatrixView};
pub use representative::{
    select_k_representatives, select_k_representatives_threaded, select_representatives,
};
