//! Contiguous row-major point matrices.
//!
//! The clustering APIs operate on a flat `rows × dim` `f32` buffer instead of
//! `&[Vec<f32>]`: one allocation for an entire point set, cache-friendly
//! sequential scans, and callers (embedding gathers, one-hot encoders) can
//! write their vectors straight into the buffer without a heap allocation per
//! point. [`Matrix`] owns such a buffer; [`MatrixView`] borrows one.

/// A borrowed row-major `rows × dim` matrix of `f32` points.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f32],
    dim: usize,
}

impl<'a> MatrixView<'a> {
    /// Wraps a flat row-major buffer of `data.len() / dim` points.
    ///
    /// Panics if `data.len()` is not a multiple of `dim`, or if `dim == 0`
    /// with a non-empty buffer (the row count would be undefined).
    pub fn new(data: &'a [f32], dim: usize) -> Self {
        if dim == 0 {
            assert!(data.is_empty(), "dim = 0 requires an empty buffer");
        } else {
            assert_eq!(data.len() % dim, 0, "buffer is not a whole number of rows");
        }
        MatrixView { data, dim }
    }

    /// Number of points.
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the matrix holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of each point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying flat buffer.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// The `i`-th point.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over the points, in order.
    pub fn rows(&self) -> std::slice::ChunksExact<'a, f32> {
        // `chunks_exact(0)` panics; an empty view yields no rows either way.
        self.data.chunks_exact(self.dim.max(1))
    }
}

/// An owned row-major `rows × dim` matrix of `f32` points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    data: Vec<f32>,
    dim: usize,
}

impl Matrix {
    /// Takes ownership of a flat row-major buffer (same validity rules as
    /// [`MatrixView::new`]).
    pub fn new(data: Vec<f32>, dim: usize) -> Self {
        // Validate through the view constructor.
        let _ = MatrixView::new(&data, dim);
        Matrix { data, dim }
    }

    /// An empty matrix that will hold `dim`-dimensional points, with space
    /// reserved for `rows` of them.
    pub fn with_capacity(rows: usize, dim: usize) -> Self {
        Matrix {
            data: Vec::with_capacity(rows * dim),
            dim,
        }
    }

    /// Flattens nested per-point vectors (every point must have length `dim`).
    pub fn from_rows(rows: &[Vec<f32>], dim: usize) -> Self {
        let mut m = Matrix::with_capacity(rows.len(), dim);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Appends one point.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "point dimensionality mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends a zero point.
    pub fn push_zero_row(&mut self) {
        self.data.resize(self.data.len() + self.dim, 0.0);
    }

    /// Number of points.
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the matrix holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of each point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th point.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The underlying flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A borrowed view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            data: &self.data,
            dim: self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_shape_and_rows() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = MatrixView::new(&data, 2);
        assert_eq!(v.num_rows(), 3);
        assert_eq!(v.dim(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let rows: Vec<&[f32]> = v.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0], &[5.0, 6.0]]);
    }

    #[test]
    fn empty_views() {
        let v = MatrixView::new(&[], 4);
        assert!(v.is_empty());
        assert_eq!(v.num_rows(), 0);
        assert_eq!(v.rows().count(), 0);
        let z = MatrixView::new(&[], 0);
        assert_eq!(z.num_rows(), 0);
        assert_eq!(z.rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_is_rejected() {
        let _ = MatrixView::new(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn matrix_building() {
        let mut m = Matrix::with_capacity(2, 3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_zero_row();
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
        let v = m.view();
        assert_eq!(v.num_rows(), 2);
        assert_eq!(v.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let m = Matrix::from_rows(&rows, 2);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row(0), rows[0].as_slice());
        assert_eq!(m.row(1), rows[1].as_slice());
        assert_eq!(Matrix::from_rows(&[], 5).num_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_row_checks_dim() {
        Matrix::with_capacity(1, 2).push_row(&[1.0]);
    }
}
