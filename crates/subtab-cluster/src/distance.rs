//! Distance helpers, folded into the shared kernel crate.
//!
//! The scalar reference implementations (and their SIMD counterparts) live
//! in [`subtab_kernels::distance`]; this module re-exports them so existing
//! `subtab_cluster::distance::*` call sites keep working unchanged.

pub use subtab_kernels::distance::{euclidean, squared_euclidean};
