//! Distance helpers.

/// Squared Euclidean distance between two equal-length vectors.
///
/// Panics in debug builds if the lengths differ (callers always compare
/// vectors produced by the same pipeline, so this indicates a logic error).
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.5, -2.0, 0.25];
        let b = [0.0, 4.0, 1.0];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
    }
}
