//! Lloyd's k-means with k-means++ initialisation.

use crate::distance::squared_euclidean;
use crate::matrix::MatrixView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subtab_kernels::{nearest_centroid_scalar, CentroidScan};

/// Below this many points a parallel assignment pass costs more in thread
/// setup than it saves; the sequential path is used regardless of `threads`.
const PARALLEL_MIN_POINTS: usize = 1024;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster centroids (`k` vectors, possibly fewer if there were
    /// fewer distinct points than clusters).
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment of every input point, consistent with `centroids`:
    /// each point is assigned to its nearest final centroid.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f32,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// K-means clustering with deterministic seeding.
///
/// Points are supplied as a contiguous row-major [`MatrixView`] — one flat
/// buffer instead of a heap allocation per point. The assignment step (the
/// O(n·k·dim) hot loop) can fan out across scoped worker threads via
/// [`KMeans::threads`]; every point's nearest centroid is an independent
/// read-only computation, so the result is bit-identical at any thread count.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    seed: u64,
    threads: usize,
    deterministic: bool,
}

impl KMeans {
    /// Creates a clusterer for `k` clusters with the given RNG seed.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iterations: 100,
            seed,
            threads: 1,
            deterministic: true,
        }
    }

    /// Overrides the maximum number of Lloyd iterations (default 100).
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters.max(1);
        self
    }

    /// Sets the worker-thread count of the assignment step (`0` = all
    /// available cores, `1` = sequential, the default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Controls the bit-compatibility discipline of the assignment kernels
    /// (default `true`).
    ///
    /// Deterministic fits use the no-reassociation SIMD distance scan that
    /// is bit-identical to the pinned scalar twin on every ISA tier.
    /// Passing `false` permits the fused multiply-add variant, which is
    /// marginally faster but rounds differently, so results may differ in
    /// the last bit (and under exact ties of rounded sums, in assignment)
    /// across ISA tiers.
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }

    /// Runs k-means on the given points.
    ///
    /// Degenerate inputs are handled gracefully: with no points the result is
    /// empty; with `k = 0` every point is assigned to a single implicit
    /// cluster 0 and no centroids are returned; with `k >= n` every point
    /// becomes its own centroid.
    pub fn fit(&self, points: MatrixView) -> KMeansResult {
        let n = points.num_rows();
        if n == 0 || self.k == 0 {
            return KMeansResult {
                centroids: Vec::new(),
                assignments: vec![0; n],
                inertia: 0.0,
                iterations: 0,
            };
        }
        let k = self.k.min(n);
        let dim = points.dim();
        let threads = resolve_threads(self.threads);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Centroids live in one contiguous `k × dim` buffer for the duration
        // of the fit (the assignment hot loop scans them sequentially per
        // point); they are only split into per-centroid vectors for the
        // returned result.
        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut dists = vec![0.0f32; n];
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        let mut iterations = 0usize;
        let mut stale = true;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            let changed = assign_points(
                points,
                &centroids,
                dim,
                &mut assignments,
                &mut dists,
                threads,
                self.deterministic,
            );
            // Update step.
            sums.fill(0.0);
            counts.fill(0);
            for (i, p) in points.rows().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                    *s += x;
                }
            }
            let mut empty = Vec::new();
            for (c, &count) in counts.iter().enumerate() {
                if count > 0 {
                    let inv = 1.0 / count as f32;
                    for (dst, s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *dst = s * inv;
                    }
                } else {
                    empty.push(c);
                }
            }
            if !empty.is_empty() {
                reseed_empty_clusters(points, &mut centroids, dim, &empty);
            }
            // With unchanged assignments and no re-seeding, this update
            // recomputed bit-identical centroids, so `assignments`/`dists`
            // already pair with the final centroids. Iteration 0 is always
            // stale: its update moves the centroids off the k-means++ seeds
            // even when no assignment changed.
            stale = changed || !empty.is_empty() || iter == 0;
            if !changed && iter > 0 {
                break;
            }
        }

        // Final consistency pass: the loop may have exited via the iteration
        // cap (or an empty-cluster re-seed) right after moving the
        // centroids, which would leave `assignments` paired with the
        // *previous* centroids and the inertia mixing the two. Re-assign
        // against the final centroids so the reported triple is
        // self-consistent; at a clean convergent exit the pass is skipped.
        if stale {
            assign_points(
                points,
                &centroids,
                dim,
                &mut assignments,
                &mut dists,
                threads,
                self.deterministic,
            );
        }
        let inertia = dists.iter().sum();
        KMeansResult {
            centroids: centroids.chunks(dim.max(1)).map(<[f32]>::to_vec).collect(),
            assignments,
            inertia,
            iterations,
        }
    }
}

/// Resolves a configured thread count (`0` = all available cores).
fn resolve_threads(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Assigns every point to its nearest centroid, recording the squared
/// distance, and reports whether any assignment changed.
///
/// The centroid set is packed once into a SIMD [`CentroidScan`] (one lane
/// per centroid, best available ISA tier) and shared by every worker; with
/// `deterministic = true` (the [`KMeans`] default) the scan is bit-identical
/// to [`assign_points_scalar`], which the `kernel_equivalence` suite pins.
///
/// With `threads > 1` (and enough points to amortise thread setup) the
/// points are split into contiguous chunks processed by scoped workers; each
/// point's result is independent of the others, so the outcome is identical
/// to the sequential pass.
#[allow(clippy::too_many_arguments)]
pub fn assign_points(
    points: MatrixView,
    centroids: &[f32],
    dim: usize,
    assignments: &mut [usize],
    dists: &mut [f32],
    threads: usize,
    deterministic: bool,
) -> bool {
    let dim = dim.max(1);
    let scan = CentroidScan::new(centroids, dim, deterministic);
    assign_points_impl(points, dim, assignments, dists, threads, &|p| {
        scan.nearest(p)
    })
}

/// The pinned scalar twin of [`assign_points`]: the 4-way blocked scalar
/// scan ([`nearest_centroid_scalar`]) with the same chunked threading.
pub fn assign_points_scalar(
    points: MatrixView,
    centroids: &[f32],
    dim: usize,
    assignments: &mut [usize],
    dists: &mut [f32],
    threads: usize,
) -> bool {
    let dim = dim.max(1);
    assign_points_impl(points, dim, assignments, dists, threads, &|p| {
        nearest_centroid_scalar(p, centroids, dim)
    })
}

fn assign_points_impl(
    points: MatrixView,
    dim: usize,
    assignments: &mut [usize],
    dists: &mut [f32],
    threads: usize,
    nearest: &(dyn Fn(&[f32]) -> (usize, f32) + Sync),
) -> bool {
    let assign_chunk = |pts: &[f32], asg: &mut [usize], ds: &mut [f32]| -> bool {
        let mut changed = false;
        for ((p, a), d) in pts.chunks_exact(dim).zip(asg.iter_mut()).zip(ds.iter_mut()) {
            let (best, best_d) = nearest(p);
            if *a != best {
                *a = best;
                changed = true;
            }
            *d = best_d;
        }
        changed
    };
    if threads <= 1 || points.num_rows() < PARALLEL_MIN_POINTS {
        return assign_chunk(points.data(), assignments, dists);
    }
    let chunk = points.num_rows().div_ceil(threads);
    let changed = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for ((pts, asg), ds) in points
            .data()
            .chunks(chunk * dim)
            .zip(assignments.chunks_mut(chunk))
            .zip(dists.chunks_mut(chunk))
        {
            let changed = &changed;
            scope.spawn(move || {
                if assign_chunk(pts, asg, ds) {
                    changed.store(true, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    changed.load(std::sync::atomic::Ordering::Relaxed)
}

/// Re-seeds each empty cluster at a distinct far-away point.
///
/// Distances of every point to its nearest current centroid are computed
/// once (the previous implementation recomputed them inside a `max_by` per
/// empty cluster, O(n²k)); the empty clusters then claim the farthest points
/// in order, each taking the next unclaimed one, so two clusters emptied in
/// the same iteration can no longer be re-seeded onto the same point (which
/// produced duplicate centroids).
fn reseed_empty_clusters(points: MatrixView, centroids: &mut [f32], dim: usize, empty: &[usize]) {
    let dists: Vec<f32> = points
        .rows()
        .map(|p| nearest_centroid_scalar(p, centroids, dim).1)
        .collect();
    let mut order: Vec<usize> = (0..points.num_rows()).collect();
    // Farthest first; the stable sort keeps ties in index order so the
    // re-seeding stays deterministic.
    order.sort_by(|&a, &b| dists[b].total_cmp(&dists[a]));
    for (&c, &far) in empty.iter().zip(order.iter()) {
        centroids[c * dim..(c + 1) * dim].copy_from_slice(points.row(far));
    }
}

/// k-means++ seeding: the first centroid is uniform, subsequent centroids are
/// drawn with probability proportional to the squared distance to the nearest
/// already-chosen centroid. Returns the seeds as one flat `k × dim` buffer.
fn kmeanspp_init(points: MatrixView, k: usize, rng: &mut StdRng) -> Vec<f32> {
    let n = points.num_rows();
    let dim = points.dim();
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    centroids.extend_from_slice(points.row(rng.gen_range(0..n)));
    let mut dists: Vec<f32> = points
        .rows()
        .map(|p| squared_euclidean(p, &centroids[..dim]))
        .collect();
    while centroids.len() < k * dim {
        let total: f32 = dists.iter().sum();
        let next = if total <= f32::EPSILON {
            // All remaining points coincide with existing centroids.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f32>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target <= d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.extend_from_slice(points.row(next));
        let latest = &centroids[centroids.len() - dim..];
        for (i, p) in points.rows().enumerate() {
            let d = squared_euclidean(p, latest);
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn blobs() -> Matrix {
        let mut pts = Matrix::with_capacity(60, 2);
        for i in 0..20 {
            pts.push_row(&[0.0 + (i % 5) as f32 * 0.01, 0.0]);
            pts.push_row(&[10.0 + (i % 5) as f32 * 0.01, 10.0]);
            pts.push_row(&[-10.0, 5.0 + (i % 5) as f32 * 0.01]);
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = blobs();
        let result = KMeans::new(3, 1).fit(pts.view());
        assert_eq!(result.centroids.len(), 3);
        assert_eq!(result.assignments.len(), pts.num_rows());
        // Points in the same blob share an assignment.
        assert_eq!(result.assignments[0], result.assignments[3]);
        assert_eq!(result.assignments[1], result.assignments[4]);
        assert_ne!(result.assignments[0], result.assignments[1]);
        // Inertia should be tiny relative to blob separation.
        assert!(result.inertia < 1.0, "inertia = {}", result.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let a = KMeans::new(3, 9).fit(pts.view());
        let b = KMeans::new(3, 9).fit(pts.view());
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_greater_than_n() {
        let pts = Matrix::new(vec![0.0, 1.0], 1);
        let result = KMeans::new(5, 0).fit(pts.view());
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Matrix::with_capacity(0, 2);
        let r = KMeans::new(3, 0).fit(empty.view());
        assert!(r.centroids.is_empty());
        assert!(r.assignments.is_empty());

        let pts = Matrix::new(vec![1.0, 2.0], 1);
        let r = KMeans::new(0, 0).fit(pts.view());
        assert!(r.centroids.is_empty());
        assert_eq!(r.assignments, vec![0, 0]);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = Matrix::from_rows(&vec![vec![2.0, 2.0]; 12], 2);
        let r = KMeans::new(3, 4).fit(pts.view());
        assert_eq!(r.assignments.len(), 12);
        assert!(r.inertia < 1e-6);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = Matrix::new(vec![0.0, 2.0, 4.0], 1);
        let r = KMeans::new(1, 0).fit(pts.view());
        assert_eq!(r.centroids.len(), 1);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_iterations_is_respected() {
        let pts = blobs();
        let r = KMeans::new(3, 1).max_iterations(1).fit(pts.view());
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn empty_cluster_reseeding_claims_distinct_points() {
        // One populated cluster at the origin, two empty ones far away.
        // Regression: the old re-seeder picked "the farthest point" once per
        // empty cluster without tracking claims, so both empty clusters
        // landed on the same point and produced duplicate centroids.
        let points = Matrix::from_rows(
            &[
                vec![0.0, 0.0],
                vec![0.1, 0.0],
                vec![0.0, 0.1],
                vec![30.0, 0.0],
                vec![29.0, 0.0],
            ],
            2,
        );
        let mut centroids = vec![0.0, 0.0, 500.0, 500.0, 600.0, 600.0];
        reseed_empty_clusters(points.view(), &mut centroids, 2, &[1, 2]);
        assert_ne!(
            centroids[2..4],
            centroids[4..6],
            "empty clusters were re-seeded onto the same point"
        );
        // They claim the two farthest points, in distance order.
        assert_eq!(&centroids[2..4], &[30.0, 0.0]);
        assert_eq!(&centroids[4..6], &[29.0, 0.0]);
    }

    #[test]
    fn result_is_self_consistent_at_the_iteration_cap() {
        // Regression: when `fit` exits via max_iterations, the assignments
        // must still pair with the *returned* centroids (the old code paired
        // pre-update assignments with post-update centroids, and reported an
        // inertia mixing the two).
        let pts = blobs();
        for seed in 0..20 {
            for cap in [1, 2] {
                let r = KMeans::new(3, seed).max_iterations(cap).fit(pts.view());
                let flat_centroids: Vec<f32> = r.centroids.concat();
                let mut expected_inertia = 0.0f32;
                for (i, p) in pts.view().rows().enumerate() {
                    let (best, d) = nearest_centroid_scalar(p, &flat_centroids, 2);
                    assert_eq!(
                        r.assignments[i], best,
                        "seed {seed} cap {cap}: point {i} not assigned to its nearest centroid"
                    );
                    expected_inertia += d;
                }
                let tol = f32::EPSILON * expected_inertia.max(1.0) * pts.num_rows() as f32;
                assert!(
                    (r.inertia - expected_inertia).abs() <= tol,
                    "seed {seed} cap {cap}: inertia {} != recomputed {expected_inertia}",
                    r.inertia
                );
            }
        }
        // k = 1 at the cap: iteration 0 moves the centroid off its k-means++
        // seed without changing any assignment, so the reported inertia must
        // still be measured against the moved centroid.
        let r = KMeans::new(1, 3).max_iterations(1).fit(pts.view());
        let expected: f32 = pts
            .view()
            .rows()
            .map(|p| squared_euclidean(p, &r.centroids[0]))
            .sum();
        assert!((r.inertia - expected).abs() <= f32::EPSILON * expected * pts.num_rows() as f32);
    }

    #[test]
    fn pruned_nearest_centroid_matches_full_evaluation() {
        // The early-abandon refinement must decide every comparison exactly
        // like an unpruned scan, ties (equal distances) included.
        let dims = [1usize, 3, 4, 7, 16];
        for &dim in &dims {
            let mut centroids = Vec::new();
            for c in 0..6 {
                for j in 0..dim {
                    centroids.push(((c * 7 + j * 3) % 5) as f32 - 2.0);
                }
            }
            // Duplicate centroid 0 as centroid 5 to force an exact tie.
            let dup = centroids[..dim].to_vec();
            let start = 5 * dim;
            centroids[start..start + dim].copy_from_slice(&dup);
            for p in 0..40 {
                let point: Vec<f32> = (0..dim).map(|j| ((p * 5 + j) % 11) as f32 * 0.3).collect();
                let (best, best_d) = nearest_centroid_scalar(&point, &centroids, dim);
                // Reference: full evaluation, first strict improvement wins.
                let mut ref_best = 0usize;
                let mut ref_d = f32::INFINITY;
                for (c, centroid) in centroids.chunks_exact(dim).enumerate() {
                    let d = squared_euclidean(&point, centroid);
                    if d < ref_d {
                        ref_d = d;
                        ref_best = c;
                    }
                }
                assert_eq!(best, ref_best, "dim {dim} point {p}");
                assert_eq!(best_d.to_bits(), ref_d.to_bits(), "dim {dim} point {p}");
            }
        }
    }

    #[test]
    fn simd_assignment_is_bit_identical_to_scalar_twin() {
        // The deterministic SIMD path must agree with the pinned scalar twin
        // on assignments AND on distance bits, across thread counts and
        // centroid counts straddling the vector widths.
        let mut pts = Matrix::with_capacity(PARALLEL_MIN_POINTS + 300, 3);
        for i in 0..PARALLEL_MIN_POINTS + 300 {
            pts.push_row(&[
                ((i * 13) % 101) as f32 * 0.37 - 18.0,
                ((i * 7) % 89) as f32 * 0.51 - 22.0,
                ((i * 29) % 97) as f32 * 0.23 - 11.0,
            ]);
        }
        for k in [1usize, 3, 8, 9, 17] {
            let centroids: Vec<f32> = (0..k * 3).map(|j| ((j * 31) % 53) as f32 - 26.0).collect();
            for threads in [1usize, 2, 4] {
                let n = pts.num_rows();
                let (mut a_simd, mut d_simd) = (vec![0usize; n], vec![0.0f32; n]);
                let (mut a_ref, mut d_ref) = (vec![0usize; n], vec![0.0f32; n]);
                assign_points(
                    pts.view(),
                    &centroids,
                    3,
                    &mut a_simd,
                    &mut d_simd,
                    threads,
                    true,
                );
                assign_points_scalar(pts.view(), &centroids, 3, &mut a_ref, &mut d_ref, threads);
                assert_eq!(a_simd, a_ref, "k {k} threads {threads}");
                let bits_simd: Vec<u32> = d_simd.iter().map(|d| d.to_bits()).collect();
                let bits_ref: Vec<u32> = d_ref.iter().map(|d| d.to_bits()).collect();
                assert_eq!(bits_simd, bits_ref, "k {k} threads {threads}");
            }
        }
    }

    #[test]
    fn threaded_fit_is_bit_identical_to_sequential() {
        // Enough points to cross PARALLEL_MIN_POINTS so the chunked path
        // actually runs.
        let mut pts = Matrix::with_capacity(PARALLEL_MIN_POINTS + 500, 2);
        for i in 0..PARALLEL_MIN_POINTS + 500 {
            let blob = (i % 3) as f32;
            pts.push_row(&[
                blob * 25.0 + (i % 7) as f32 * 0.1,
                blob * -10.0 + (i % 11) as f32 * 0.1,
            ]);
        }
        let sequential = KMeans::new(3, 5).fit(pts.view());
        for threads in [0, 2, 4] {
            let parallel = KMeans::new(3, 5).threads(threads).fit(pts.view());
            assert_eq!(sequential.assignments, parallel.assignments);
            assert_eq!(sequential.centroids, parallel.centroids);
            assert_eq!(sequential.inertia, parallel.inertia);
            assert_eq!(sequential.iterations, parallel.iterations);
        }
    }
}
