//! Lloyd's k-means with k-means++ initialisation.

use crate::distance::squared_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Below this many points a parallel assignment pass costs more in thread
/// setup than it saves; the sequential path is used regardless of `threads`.
const PARALLEL_MIN_POINTS: usize = 1024;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster centroids (`k` vectors, possibly fewer if there were
    /// fewer distinct points than clusters).
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment of every input point, consistent with `centroids`:
    /// each point is assigned to its nearest final centroid.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f32,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// K-means clustering with deterministic seeding.
///
/// The assignment step (the O(n·k·dim) hot loop) can fan out across scoped
/// worker threads via [`KMeans::threads`]; every point's nearest centroid is
/// an independent read-only computation, so the result is bit-identical at
/// any thread count.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    seed: u64,
    threads: usize,
}

impl KMeans {
    /// Creates a clusterer for `k` clusters with the given RNG seed.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iterations: 100,
            seed,
            threads: 1,
        }
    }

    /// Overrides the maximum number of Lloyd iterations (default 100).
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters.max(1);
        self
    }

    /// Sets the worker-thread count of the assignment step (`0` = all
    /// available cores, `1` = sequential, the default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs k-means on the given points.
    ///
    /// Degenerate inputs are handled gracefully: with no points the result is
    /// empty; with `k = 0` every point is assigned to a single implicit
    /// cluster 0 and no centroids are returned; with `k >= n` every point
    /// becomes its own centroid.
    pub fn fit(&self, points: &[Vec<f32>]) -> KMeansResult {
        let n = points.len();
        if n == 0 || self.k == 0 {
            return KMeansResult {
                centroids: Vec::new(),
                assignments: vec![0; n],
                inertia: 0.0,
                iterations: 0,
            };
        }
        let k = self.k.min(n);
        let dim = points[0].len();
        let threads = resolve_threads(self.threads);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut dists = vec![0.0f32; n];
        let mut iterations = 0usize;
        let mut stale = true;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            let changed = assign_points(points, &centroids, &mut assignments, &mut dists, threads);
            // Update step.
            let mut sums = vec![vec![0.0f32; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(p) {
                    *s += x;
                }
            }
            let mut empty = Vec::new();
            for (c, sum) in sums.iter_mut().enumerate() {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    for (dst, s) in centroids[c].iter_mut().zip(sum.iter()) {
                        *dst = s * inv;
                    }
                } else {
                    empty.push(c);
                }
            }
            if !empty.is_empty() {
                reseed_empty_clusters(points, &mut centroids, &empty);
            }
            // With unchanged assignments and no re-seeding, this update
            // recomputed bit-identical centroids, so `assignments`/`dists`
            // already pair with the final centroids. Iteration 0 is always
            // stale: its update moves the centroids off the k-means++ seeds
            // even when no assignment changed.
            stale = changed || !empty.is_empty() || iter == 0;
            if !changed && iter > 0 {
                break;
            }
        }

        // Final consistency pass: the loop may have exited via the iteration
        // cap (or an empty-cluster re-seed) right after moving the
        // centroids, which would leave `assignments` paired with the
        // *previous* centroids and the inertia mixing the two. Re-assign
        // against the final centroids so the reported triple is
        // self-consistent; at a clean convergent exit the pass is skipped.
        if stale {
            assign_points(points, &centroids, &mut assignments, &mut dists, threads);
        }
        let inertia = dists.iter().sum();
        KMeansResult {
            centroids,
            assignments,
            inertia,
            iterations,
        }
    }
}

/// Resolves a configured thread count (`0` = all available cores).
fn resolve_threads(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Assigns every point to its nearest centroid, recording the squared
/// distance, and reports whether any assignment changed.
///
/// With `threads > 1` (and enough points to amortise thread setup) the
/// points are split into contiguous chunks processed by scoped workers; each
/// point's result is independent of the others, so the outcome is identical
/// to the sequential pass.
fn assign_points(
    points: &[Vec<f32>],
    centroids: &[Vec<f32>],
    assignments: &mut [usize],
    dists: &mut [f32],
    threads: usize,
) -> bool {
    let assign_chunk = |pts: &[Vec<f32>], asg: &mut [usize], ds: &mut [f32]| -> bool {
        let mut changed = false;
        for ((p, a), d) in pts.iter().zip(asg.iter_mut()).zip(ds.iter_mut()) {
            let (best, best_d) = nearest_centroid(p, centroids);
            if *a != best {
                *a = best;
                changed = true;
            }
            *d = best_d;
        }
        changed
    };
    if threads <= 1 || points.len() < PARALLEL_MIN_POINTS {
        return assign_chunk(points, assignments, dists);
    }
    let chunk = points.len().div_ceil(threads);
    let changed = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for ((pts, asg), ds) in points
            .chunks(chunk)
            .zip(assignments.chunks_mut(chunk))
            .zip(dists.chunks_mut(chunk))
        {
            let changed = &changed;
            scope.spawn(move || {
                if assign_chunk(pts, asg, ds) {
                    changed.store(true, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    changed.load(std::sync::atomic::Ordering::Relaxed)
}

/// Re-seeds each empty cluster at a distinct far-away point.
///
/// Distances of every point to its nearest current centroid are computed
/// once (the previous implementation recomputed them inside a `max_by` per
/// empty cluster, O(n²k)); the empty clusters then claim the farthest points
/// in order, each taking the next unclaimed one, so two clusters emptied in
/// the same iteration can no longer be re-seeded onto the same point (which
/// produced duplicate centroids).
fn reseed_empty_clusters(points: &[Vec<f32>], centroids: &mut [Vec<f32>], empty: &[usize]) {
    let dists: Vec<f32> = points
        .iter()
        .map(|p| nearest_centroid(p, centroids).1)
        .collect();
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Farthest first; the stable sort keeps ties in index order so the
    // re-seeding stays deterministic.
    order.sort_by(|&a, &b| dists[b].total_cmp(&dists[a]));
    for (&c, &far) in empty.iter().zip(order.iter()) {
        centroids[c] = points[far].clone();
    }
}

fn nearest_centroid(point: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = squared_euclidean(point, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: the first centroid is uniform, subsequent centroids are
/// drawn with probability proportional to the squared distance to the nearest
/// already-chosen centroid.
fn kmeanspp_init(points: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut dists: Vec<f32> = points
        .iter()
        .map(|p| squared_euclidean(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let next = if total <= f32::EPSILON {
            // All remaining points coincide with existing centroids.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f32>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target <= d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = squared_euclidean(p, centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i % 5) as f32 * 0.01, 0.0]);
            pts.push(vec![10.0 + (i % 5) as f32 * 0.01, 10.0]);
            pts.push(vec![-10.0, 5.0 + (i % 5) as f32 * 0.01]);
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = blobs();
        let result = KMeans::new(3, 1).fit(&pts);
        assert_eq!(result.centroids.len(), 3);
        assert_eq!(result.assignments.len(), pts.len());
        // Points in the same blob share an assignment.
        assert_eq!(result.assignments[0], result.assignments[3]);
        assert_eq!(result.assignments[1], result.assignments[4]);
        assert_ne!(result.assignments[0], result.assignments[1]);
        // Inertia should be tiny relative to blob separation.
        assert!(result.inertia < 1.0, "inertia = {}", result.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let a = KMeans::new(3, 9).fit(&pts);
        let b = KMeans::new(3, 9).fit(&pts);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_greater_than_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let result = KMeans::new(5, 0).fit(&pts);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<Vec<f32>> = Vec::new();
        let r = KMeans::new(3, 0).fit(&empty);
        assert!(r.centroids.is_empty());
        assert!(r.assignments.is_empty());

        let r = KMeans::new(0, 0).fit(&[vec![1.0], vec![2.0]]);
        assert!(r.centroids.is_empty());
        assert_eq!(r.assignments, vec![0, 0]);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![vec![2.0, 2.0]; 12];
        let r = KMeans::new(3, 4).fit(&pts);
        assert_eq!(r.assignments.len(), 12);
        assert!(r.inertia < 1e-6);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = KMeans::new(1, 0).fit(&pts);
        assert_eq!(r.centroids.len(), 1);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_iterations_is_respected() {
        let pts = blobs();
        let r = KMeans::new(3, 1).max_iterations(1).fit(&pts);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn empty_cluster_reseeding_claims_distinct_points() {
        // One populated cluster at the origin, two empty ones far away.
        // Regression: the old re-seeder picked "the farthest point" once per
        // empty cluster without tracking claims, so both empty clusters
        // landed on the same point and produced duplicate centroids.
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![30.0, 0.0],
            vec![29.0, 0.0],
        ];
        let mut centroids = vec![vec![0.0, 0.0], vec![500.0, 500.0], vec![600.0, 600.0]];
        reseed_empty_clusters(&points, &mut centroids, &[1, 2]);
        assert_ne!(
            centroids[1], centroids[2],
            "empty clusters were re-seeded onto the same point"
        );
        // They claim the two farthest points, in distance order.
        assert_eq!(centroids[1], vec![30.0, 0.0]);
        assert_eq!(centroids[2], vec![29.0, 0.0]);
    }

    #[test]
    fn result_is_self_consistent_at_the_iteration_cap() {
        // Regression: when `fit` exits via max_iterations, the assignments
        // must still pair with the *returned* centroids (the old code paired
        // pre-update assignments with post-update centroids, and reported an
        // inertia mixing the two).
        let pts = blobs();
        for seed in 0..20 {
            for cap in [1, 2] {
                let r = KMeans::new(3, seed).max_iterations(cap).fit(&pts);
                let mut expected_inertia = 0.0f32;
                for (i, p) in pts.iter().enumerate() {
                    let (best, d) = nearest_centroid(p, &r.centroids);
                    assert_eq!(
                        r.assignments[i], best,
                        "seed {seed} cap {cap}: point {i} not assigned to its nearest centroid"
                    );
                    expected_inertia += d;
                }
                let tol = f32::EPSILON * expected_inertia.max(1.0) * pts.len() as f32;
                assert!(
                    (r.inertia - expected_inertia).abs() <= tol,
                    "seed {seed} cap {cap}: inertia {} != recomputed {expected_inertia}",
                    r.inertia
                );
            }
        }
        // k = 1 at the cap: iteration 0 moves the centroid off its k-means++
        // seed without changing any assignment, so the reported inertia must
        // still be measured against the moved centroid.
        let r = KMeans::new(1, 3).max_iterations(1).fit(&pts);
        let expected: f32 = pts
            .iter()
            .map(|p| squared_euclidean(p, &r.centroids[0]))
            .sum();
        assert!((r.inertia - expected).abs() <= f32::EPSILON * expected * pts.len() as f32);
    }

    #[test]
    fn threaded_fit_is_bit_identical_to_sequential() {
        // Enough points to cross PARALLEL_MIN_POINTS so the chunked path
        // actually runs.
        let mut pts = Vec::new();
        for i in 0..PARALLEL_MIN_POINTS + 500 {
            let blob = (i % 3) as f32;
            pts.push(vec![
                blob * 25.0 + (i % 7) as f32 * 0.1,
                blob * -10.0 + (i % 11) as f32 * 0.1,
            ]);
        }
        let sequential = KMeans::new(3, 5).fit(&pts);
        for threads in [0, 2, 4] {
            let parallel = KMeans::new(3, 5).threads(threads).fit(&pts);
            assert_eq!(sequential.assignments, parallel.assignments);
            assert_eq!(sequential.centroids, parallel.centroids);
            assert_eq!(sequential.inertia, parallel.inertia);
            assert_eq!(sequential.iterations, parallel.iterations);
        }
    }
}
