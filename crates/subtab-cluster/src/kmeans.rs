//! Lloyd's k-means with k-means++ initialisation.

use crate::distance::squared_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster centroids (`k` vectors, possibly fewer if there were
    /// fewer distinct points than clusters).
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment of every input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f32,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// K-means clustering with deterministic seeding.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    seed: u64,
}

impl KMeans {
    /// Creates a clusterer for `k` clusters with the given RNG seed.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iterations: 100,
            seed,
        }
    }

    /// Overrides the maximum number of Lloyd iterations (default 100).
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters.max(1);
        self
    }

    /// Runs k-means on the given points.
    ///
    /// Degenerate inputs are handled gracefully: with no points the result is
    /// empty; with `k = 0` every point is assigned to a single implicit
    /// cluster 0 and no centroids are returned; with `k >= n` every point
    /// becomes its own centroid.
    pub fn fit(&self, points: &[Vec<f32>]) -> KMeansResult {
        let n = points.len();
        if n == 0 || self.k == 0 {
            return KMeansResult {
                centroids: Vec::new(),
                assignments: vec![0; n],
                inertia: 0.0,
                iterations: 0,
            };
        }
        let k = self.k.min(n);
        let dim = points[0].len();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0usize;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let (best, _) = nearest_centroid(p, &centroids);
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0f32; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, sum) in sums.iter_mut().enumerate() {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    for (dst, s) in centroids[c].iter_mut().zip(sum.iter()) {
                        *dst = s * inv;
                    }
                } else {
                    // Empty cluster: re-seed it at the point farthest from its
                    // current centroid assignment.
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let da = nearest_centroid(a, &centroids).1;
                            let db = nearest_centroid(b, &centroids).1;
                            da.total_cmp(&db)
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    centroids[c] = points[far].clone();
                }
            }
            if !changed && iter > 0 {
                break;
            }
        }

        let inertia = points
            .iter()
            .enumerate()
            .map(|(i, p)| squared_euclidean(p, &centroids[assignments[i]]))
            .sum();
        KMeansResult {
            centroids,
            assignments,
            inertia,
            iterations,
        }
    }
}

fn nearest_centroid(point: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = squared_euclidean(point, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: the first centroid is uniform, subsequent centroids are
/// drawn with probability proportional to the squared distance to the nearest
/// already-chosen centroid.
fn kmeanspp_init(points: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut dists: Vec<f32> = points
        .iter()
        .map(|p| squared_euclidean(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let next = if total <= f32::EPSILON {
            // All remaining points coincide with existing centroids.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f32>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target <= d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = squared_euclidean(p, centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i % 5) as f32 * 0.01, 0.0]);
            pts.push(vec![10.0 + (i % 5) as f32 * 0.01, 10.0]);
            pts.push(vec![-10.0, 5.0 + (i % 5) as f32 * 0.01]);
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = blobs();
        let result = KMeans::new(3, 1).fit(&pts);
        assert_eq!(result.centroids.len(), 3);
        assert_eq!(result.assignments.len(), pts.len());
        // Points in the same blob share an assignment.
        assert_eq!(result.assignments[0], result.assignments[3]);
        assert_eq!(result.assignments[1], result.assignments[4]);
        assert_ne!(result.assignments[0], result.assignments[1]);
        // Inertia should be tiny relative to blob separation.
        assert!(result.inertia < 1.0, "inertia = {}", result.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let a = KMeans::new(3, 9).fit(&pts);
        let b = KMeans::new(3, 9).fit(&pts);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_greater_than_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let result = KMeans::new(5, 0).fit(&pts);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<Vec<f32>> = Vec::new();
        let r = KMeans::new(3, 0).fit(&empty);
        assert!(r.centroids.is_empty());
        assert!(r.assignments.is_empty());

        let r = KMeans::new(0, 0).fit(&[vec![1.0], vec![2.0]]);
        assert!(r.centroids.is_empty());
        assert_eq!(r.assignments, vec![0, 0]);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![vec![2.0, 2.0]; 12];
        let r = KMeans::new(3, 4).fit(&pts);
        assert_eq!(r.assignments.len(), 12);
        assert!(r.inertia < 1e-6);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = KMeans::new(1, 0).fit(&pts);
        assert_eq!(r.centroids.len(), 1);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_iterations_is_respected() {
        let pts = blobs();
        let r = KMeans::new(3, 1).max_iterations(1).fit(&pts);
        assert_eq!(r.iterations, 1);
    }
}
