//! Golden-value tests for the sharded SGNS trainer.
//!
//! The fixture in `tests/golden/embedding_ref_seed7.txt` was captured from
//! the pre-refactor single-threaded trainer (hex `f32::to_bits` per
//! component). The `threads = 1` reference path must keep reproducing it
//! byte for byte; the parallel deterministic mode must stay run-to-run
//! reproducible at any thread count.

use subtab_binning::{Binner, BinningConfig};
use subtab_data::Table;
use subtab_embed::{train_embedding, CellEmbedding, EmbeddingConfig};

/// The exact table and configuration the fixture was captured with
/// (`window: None` so the corrected pair count leaves the learning-rate
/// schedule untouched).
fn golden_setup() -> (subtab_binning::BinnedTable, EmbeddingConfig) {
    let rows = 50usize;
    let t = Table::builder()
        .column_i64("a", (0..rows).map(|i| Some((i % 2) as i64)).collect())
        .column_str(
            "b",
            (0..rows)
                .map(|i| Some(if i % 2 == 0 { "x" } else { "y" }))
                .collect(),
        )
        .column_i64("c", (0..rows).map(|i| Some((i % 5) as i64)).collect())
        .build()
        .unwrap();
    let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
    let bt = binner.apply(&t).unwrap();
    let cfg = EmbeddingConfig {
        dim: 8,
        epochs: 3,
        window: None,
        seed: 7,
        max_column_sentence_len: 16,
        threads: 1,
        deterministic: true,
        ..Default::default()
    };
    (bt, cfg)
}

fn render_bits(emb: &CellEmbedding) -> String {
    let mut out = String::new();
    for token in emb.tokens() {
        out.push_str(token);
        for x in emb.vector(token).unwrap() {
            out.push_str(&format!(" {:08x}", x.to_bits()));
        }
        out.push('\n');
    }
    out
}

#[test]
fn threads_1_reference_path_is_bit_exact_with_pre_refactor_golden() {
    let (bt, cfg) = golden_setup();
    let emb = train_embedding(&bt, &cfg);
    let golden = include_str!("golden/embedding_ref_seed7.txt");
    assert_eq!(
        render_bits(&emb),
        golden,
        "threads = 1 reference output drifted from the pre-refactor golden embedding"
    );
}

#[test]
fn threads_4_deterministic_mode_is_run_to_run_reproducible() {
    let (bt, cfg) = golden_setup();
    let cfg = EmbeddingConfig {
        threads: 4,
        deterministic: true,
        ..cfg
    };
    let a = train_embedding(&bt, &cfg);
    let b = train_embedding(&bt, &cfg);
    assert_eq!(render_bits(&a), render_bits(&b));
}

#[test]
fn hogwild_learns_the_planted_co_occurrence() {
    // Hogwild is racy by design, so no bit-exactness — but the learned
    // structure must hold: a=0 co-occurs with b="p" in every row sentence
    // and never with b="q". A 4-way keyed pattern keeps the embedding
    // space non-degenerate so the ordering is stable across racy runs.
    let rows = 200usize;
    let labels = ["p", "q", "r", "s"];
    let t = Table::builder()
        .column_i64("a", (0..rows).map(|i| Some((i % 4) as i64)).collect())
        .column_str("b", (0..rows).map(|i| Some(labels[i % 4])).collect())
        .column_i64("c", (0..rows).map(|i| Some((i % 5) as i64)).collect())
        .build()
        .unwrap();
    let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
    let bt = binner.apply(&t).unwrap();
    let hog = train_embedding(
        &bt,
        &EmbeddingConfig {
            dim: 8,
            epochs: 12,
            seed: 7,
            window: None,
            include_column_sentences: false,
            threads: 4,
            deterministic: false,
            ..Default::default()
        },
    );
    let a_col = bt.column_index("a").unwrap();
    let b_col = bt.column_index("b").unwrap();
    let pos = hog
        .cosine(&bt.cell_token(0, a_col), &bt.cell_token(0, b_col))
        .unwrap();
    let neg = hog
        .cosine(&bt.cell_token(0, a_col), &bt.cell_token(1, b_col))
        .unwrap();
    assert!(
        pos > neg,
        "hogwild lost the planted co-occurrence: cos+ = {pos}, cos- = {neg}"
    );
}
