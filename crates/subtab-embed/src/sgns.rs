//! Skip-gram with negative sampling (SGNS), the Word2Vec variant used by the
//! paper's reference implementation (via gensim).
//!
//! # Trainer architecture
//!
//! The corpus is flattened once into a contiguous buffer of
//! `(center, context)` pairs, which is split into `threads` contiguous
//! shards; each shard is trained by one worker with its own deterministic
//! RNG stream derived from the seed. Four execution modes cover the
//! speed/reproducibility trade-off:
//!
//! | `threads` | `deterministic` | mode |
//! |---|---|---|
//! | 1 | `true` (default) | **reference** — bit-exact with the original single-threaded trainer |
//! | 1 | `false` | **fast sequential** — sigmoid table + alias sampling, reproducible |
//! | >1 | `true` | **sharded replica averaging** — parallel, run-to-run reproducible |
//! | >1 | `false` | **Hogwild** — lock-free shared weights, fastest, not bit-reproducible |
//!
//! The reference path exists so golden embeddings and every downstream test
//! that depends on exact vector values stay valid; the fast paths trade that
//! bit-compatibility for a precomputed 512-entry sigmoid table and
//! alias-method negative sampling. Memory for the pair buffer is
//! `8 bytes × pairs`, where pairs per sentence are about
//! `len × min(2·window, len − 1)` — worst case roughly 0.8 GB at the
//! paper's 100 000-sentence cap with the default window of 8 and 64-token
//! column-sentence chunks; typical tables sit orders of magnitude below
//! that (the quick-scale Flights stand-in flattens to ~11 MB).
//!
//! One deliberate deviation from the pre-refactor trainer applies to every
//! mode, the reference included: the pair count feeding the learning-rate
//! schedule (`count_pairs`) is now *exact*, where the old trainer overcounted near sentence edges and
//! decayed the learning rate too slowly. Reference output is therefore
//! byte-identical to pre-refactor exactly when the old count was already
//! exact — windowless configs, or windows no shorter than every sentence —
//! which is what the golden-fixture test pins; windowed configs differ by
//! the corrected schedule (and only by it).

use crate::corpus::{build_corpus, Corpus, CorpusOptions};
use crate::model::{CellEmbedding, Quantization};
use crate::stream::{build_pair_stream, StreamOptions};
use crate::vocab::{AliasTable, Vocab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use subtab_binning::BinnedTable;
use subtab_kernels::{fma_select, AlignedBuf};

/// Hyper-parameters of the embedding step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Dimensionality of the cell vectors (γ in the paper's notation).
    pub dim: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10% over training).
    pub learning_rate: f32,
    /// Number of negative samples per positive pair.
    pub negative_samples: usize,
    /// Context window. `None` uses the whole sentence as context, matching
    /// the paper's `windowSize = max(n, m)`; a small value (e.g. 8) trades a
    /// little fidelity for much faster training on long sentences.
    pub window: Option<usize>,
    /// Maximum number of sentences in the corpus (paper: 100 000).
    pub max_sentences: usize,
    /// Chunk length for column sentences.
    pub max_column_sentence_len: usize,
    /// Whether column sentences are included in the corpus.
    pub include_column_sentences: bool,
    /// RNG seed (initialisation, negative sampling, corpus subsample).
    pub seed: u64,
    /// Minimum corpus occurrence count for a token to enter the vocabulary
    /// (counted like the materialized corpus: every cell visit, so ×2 when
    /// column sentences are on). Pruned cells resolve to `NO_TOKEN` in the
    /// token plane, which selection already skips. `0` (the default) and
    /// `1` keep everything — and keep preprocess output byte-identical.
    #[serde(default)]
    pub min_count: u64,
    /// Word2Vec frequency-subsampling threshold `t`: an occurrence of a
    /// token with corpus frequency `f` is kept with probability
    /// `min(1, sqrt(t/f) + t/f)` under a deterministic seeded hash.
    /// `0.0` (the default) disables subsampling. Typical: 1e-3 .. 1e-5.
    #[serde(default)]
    pub subsample_t: f64,
    /// Post-training storage format of the embedding matrix; see
    /// [`Quantization`]. The default keeps the full-precision f32 matrix.
    #[serde(default)]
    pub quantize: Quantization,
    /// Worker threads for the sharded trainer. `0` uses all available
    /// cores; `1` (the default) trains on a single thread.
    pub threads: usize,
    /// Reproducibility mode. With one thread, `true` selects the bit-exact
    /// reference trainer; with several, workers train private replicas that
    /// are averaged after every epoch, which is run-to-run reproducible
    /// regardless of scheduling. `false` enables the fast kernels on one
    /// thread and lock-free Hogwild updates on several (fastest, but racy
    /// updates make repeated runs differ in the low bits).
    pub deterministic: bool,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dim: 32,
            epochs: 3,
            learning_rate: 0.025,
            negative_samples: 5,
            window: Some(8),
            max_sentences: 100_000,
            max_column_sentence_len: 64,
            include_column_sentences: true,
            seed: 42,
            min_count: 0,
            subsample_t: 0.0,
            quantize: Quantization::None,
            threads: 1,
            deterministic: true,
        }
    }
}

impl EmbeddingConfig {
    fn corpus_options(&self) -> CorpusOptions {
        CorpusOptions {
            max_sentences: self.max_sentences,
            max_column_sentence_len: self.max_column_sentence_len,
            include_column_sentences: self.include_column_sentences,
            seed: self.seed,
        }
    }

    fn stream_options(&self) -> StreamOptions {
        StreamOptions {
            max_sentences: self.max_sentences,
            max_column_sentence_len: self.max_column_sentence_len,
            include_column_sentences: self.include_column_sentences,
            seed: self.seed,
            window: self.window,
            min_count: self.min_count,
            subsample_t: self.subsample_t,
        }
    }

    /// The worker count after resolving `threads = 0` to the machine's
    /// available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Trains cell embeddings for a binned table. This is the expensive half of
/// SubTab's pre-processing phase.
///
/// The pair stream is built directly from the columnar code planes
/// ([`build_pair_stream`]) — no materialized sentence corpus — honouring the
/// config's `min_count` / `subsample_t` pruning knobs; with the knobs at
/// their defaults the stream, and therefore the trained model, is
/// byte-identical to [`train_embedding_materialized`].
pub fn train_embedding(binned: &BinnedTable, config: &EmbeddingConfig) -> CellEmbedding {
    let stream = build_pair_stream(binned, &config.stream_options());
    train_pairs(&stream.vocab, &stream.pairs, config)
}

/// The pre-streaming preprocess pipeline, preserved as the pinned reference
/// twin: materialize the sentence corpus, then flatten and train. Ignores
/// `min_count` / `subsample_t` (the materialized builder has no pruning);
/// the equivalence suite and the `scale-preprocess-legacy` bench comparator
/// run through here.
pub fn train_embedding_materialized(
    binned: &BinnedTable,
    config: &EmbeddingConfig,
) -> CellEmbedding {
    let corpus = build_corpus(binned, &config.corpus_options());
    train_on_corpus(&corpus, config)
}

/// Trains SGNS on an already-built corpus (exposed for ablation benches).
pub fn train_on_corpus(corpus: &Corpus, config: &EmbeddingConfig) -> CellEmbedding {
    let pairs = flatten_pairs(corpus, config.window);
    train_pairs(&corpus.vocab, &pairs, config)
}

/// Trains SGNS over a flat `(center, context)` pair buffer and its
/// vocabulary — the shared back half of the streaming and materialized
/// entry points. The weight matrices are allocated once, sized from the
/// (possibly pruned) vocabulary.
pub fn train_pairs(vocab: &Vocab, pairs: &[[u32; 2]], config: &EmbeddingConfig) -> CellEmbedding {
    let vocab_size = vocab.len();
    let dim = config.dim.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    if vocab_size == 0 {
        return CellEmbedding::new(dim, Vec::new(), Vec::new());
    }

    // Word2Vec-style initialisation: input vectors uniform in
    // [-0.5/dim, 0.5/dim], output vectors zero. The init draws come first in
    // the seed RNG stream, exactly as in the original trainer.
    let mut w_in: Vec<f32> = (0..vocab_size * dim)
        .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
        .collect();
    let mut w_out: Vec<f32> = vec![0.0; vocab_size * dim];

    if !pairs.is_empty() {
        let threads = config.effective_threads().max(1).min(pairs.len());
        match (threads, config.deterministic) {
            (1, true) => train_reference(vocab, config, pairs, &mut w_in, &mut w_out, &mut rng),
            (1, false) => train_fast_sequential(vocab, config, pairs, &mut w_in, &mut w_out),
            (n, true) => train_sharded_averaged(vocab, config, pairs, n, &mut w_in, &mut w_out),
            (n, false) => train_hogwild(vocab, config, pairs, n, &mut w_in, &mut w_out),
        }
    }

    CellEmbedding::from_flat(dim, vocab.tokens().to_vec(), w_in).quantized(config.quantize)
}

// ---------------------------------------------------------------------------
// Pair flattening and the exact pair count.

/// Flattens the corpus into the contiguous `(center, context)` pair buffer in
/// the exact enumeration order of the original nested loops (sentence order,
/// centers left to right, contexts left to right with the center skipped).
fn flatten_pairs(corpus: &Corpus, window: Option<usize>) -> Vec<[u32; 2]> {
    let mut pairs = Vec::with_capacity(count_pairs(corpus, window));
    for sentence in &corpus.sentences {
        let len = sentence.len();
        for (i, &center) in sentence.iter().enumerate() {
            let (lo, hi) = match window {
                Some(w) => (i.saturating_sub(w), (i + w + 1).min(len)),
                None => (0, len),
            };
            for (j, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
                if j != i {
                    pairs.push([center, context]);
                }
            }
        }
    }
    debug_assert_eq!(pairs.len(), count_pairs(corpus, window));
    pairs
}

/// Exact number of `(center, context)` pairs one epoch visits.
///
/// For a windowed pass, position `i` of a sentence of length `len`
/// contributes `min(i, w) + min(len - 1 - i, w)` pairs; summed in closed
/// form this is `w · (2·len − w − 1)` once `len > w`, and the full
/// `len · (len − 1)` otherwise. (The previous formula,
/// `len · min(2w, len − 1)`, pretended every position had a full window,
/// overcounting near sentence edges and skewing the linear learning-rate
/// decay low.)
fn count_pairs(corpus: &Corpus, window: Option<usize>) -> usize {
    corpus
        .sentences
        .iter()
        .map(|s| {
            let len = s.len();
            if len == 0 {
                return 0;
            }
            match window {
                Some(w) => {
                    if len <= w + 1 {
                        len * (len - 1)
                    } else {
                        w * (2 * len - w - 1)
                    }
                }
                None => len * (len - 1),
            }
        })
        .sum()
}

// ---------------------------------------------------------------------------
// Reference path: bit-exact with the original single-threaded trainer.

/// The original trainer, reproduced computation-for-computation over the
/// flat pair buffer: exact `exp` sigmoid, cumulative-table negative
/// sampling, one RNG stream continuing from initialisation. Golden
/// embeddings are validated against this path.
fn train_reference(
    vocab: &Vocab,
    config: &EmbeddingConfig,
    pairs: &[[u32; 2]],
    w_in: &mut [f32],
    w_out: &mut [f32],
    rng: &mut StdRng,
) {
    let dim = config.dim.max(1);
    let epochs = config.epochs.max(1);
    let total_pairs = pairs.len() * epochs;
    let mut processed = 0usize;
    let lr0 = config.learning_rate;
    let mut grad_in = vec![0.0f32; dim];
    let mut center_vec = vec![0.0f32; dim];

    for _epoch in 0..epochs {
        for &[center, context] in pairs {
            let lr = lr0 * (1.0 - processed as f32 / (total_pairs as f32 + 1.0)).max(0.1);
            processed += 1;

            // One positive + `negative_samples` negative updates.
            grad_in.iter_mut().for_each(|g| *g = 0.0);
            center_vec.copy_from_slice(row(w_in, center, dim));
            for neg in 0..=config.negative_samples {
                let (target, label) = if neg == 0 {
                    (context, 1.0f32)
                } else {
                    (vocab.sample_negative(rng), 0.0f32)
                };
                if label == 0.0 && target == context {
                    continue;
                }
                let out = row_mut(w_out, target, dim);
                let dot: f32 = center_vec.iter().zip(out.iter()).map(|(a, b)| a * b).sum();
                let pred = sigmoid(dot);
                let g = (label - pred) * lr;
                for d in 0..dim {
                    grad_in[d] += g * out[d];
                    out[d] += g * center_vec[d];
                }
            }
            let center_slice = row_mut(w_in, center, dim);
            for d in 0..dim {
                center_slice[d] += grad_in[d];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fast kernels: sigmoid table, alias sampling, per-shard RNG streams.

/// Precomputed sigmoid, Word2Vec style: 512 samples of σ over [−6, 6],
/// saturating outside.
struct SigmoidTable {
    table: [f32; Self::SIZE],
}

impl SigmoidTable {
    const SIZE: usize = 512;
    const MAX_EXP: f32 = 6.0;

    fn new() -> Self {
        let mut table = [0.0f32; Self::SIZE];
        for (i, slot) in table.iter_mut().enumerate() {
            // Midpoint of bin i over [-MAX_EXP, MAX_EXP).
            let x = ((i as f32 + 0.5) / Self::SIZE as f32 * 2.0 - 1.0) * Self::MAX_EXP;
            *slot = sigmoid(x);
        }
        SigmoidTable { table }
    }

    /// Branchless lookup: the argument is clamped into the table range, so
    /// saturated inputs return σ(±MAX_EXP) (≈ 0.0025 / 0.9975) instead of
    /// exactly 0/1 — the same saturation gensim's table applies.
    #[inline]
    fn value(&self, x: f32) -> f32 {
        let x = x.clamp(-Self::MAX_EXP, Self::MAX_EXP);
        let idx = ((x + Self::MAX_EXP) * (Self::SIZE as f32 / (2.0 * Self::MAX_EXP))) as usize;
        self.table[idx.min(Self::SIZE - 1)]
    }
}

/// Splits the pair buffer into at most `threads` contiguous, near-equal
/// shards.
fn shard_pairs(pairs: &[[u32; 2]], threads: usize) -> Vec<&[[u32; 2]]> {
    let chunk = pairs.len().div_ceil(threads).max(1);
    pairs.chunks(chunk).collect()
}

/// Raw pointers to the two weight matrices, shared across Hogwild workers.
///
/// Cloning the handle hands every worker mutable access to the same rows;
/// concurrent updates race *by design* (Hogwild: sparse SGD updates rarely
/// collide, and a lost f32 write costs a fraction of one gradient step).
/// Aligned 4-byte stores cannot tear on the supported targets, so a racy
/// read observes either the old or the new value.
///
/// This is formally a data race, which Rust's memory model does not bless
/// even when every racing access is a plain aligned f32 — the same
/// trade-off Hogwild implementations across the ecosystem make, because
/// per-element relaxed atomics defeat the SIMD kernels. The race is only
/// reachable in the explicitly opt-in `threads > 1, deterministic = false`
/// mode; every other mode gives each worker exclusive storage. If a future
/// toolchain miscompiles this, the fallback is swapping the fast mode's
/// shared matrices for `AtomicU32` bit views at a measured throughput cost.
#[derive(Clone, Copy)]
struct WeightsPtr {
    w_in: *mut f32,
    w_out: *mut f32,
    dim: usize,
}

// SAFETY: the pointers stay valid for the whole thread::scope that uses
// them, and the racy accesses are confined to `train_shard_fast` under the
// Hogwild contract documented on the struct.
unsafe impl Send for WeightsPtr {}
unsafe impl Sync for WeightsPtr {}

impl WeightsPtr {
    fn new(w_in: &mut [f32], w_out: &mut [f32], dim: usize) -> Self {
        WeightsPtr {
            w_in: w_in.as_mut_ptr(),
            w_out: w_out.as_mut_ptr(),
            dim,
        }
    }

    /// # Safety
    /// `idx` must be a valid row; see the Hogwild contract on the struct.
    #[inline]
    #[allow(clippy::mut_from_ref)] // Hogwild: aliasing is the whole point
    unsafe fn in_row(&self, idx: u32) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.w_in.add(idx as usize * self.dim), self.dim)
    }

    /// # Safety
    /// `idx` must be a valid row; see the Hogwild contract on the struct.
    #[inline]
    #[allow(clippy::mut_from_ref)] // Hogwild: aliasing is the whole point
    unsafe fn out_row(&self, idx: u32) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.w_out.add(idx as usize * self.dim), self.dim)
    }
}

// The 64-byte-aligned training buffers (weight rows of the common
// dimensionalities start on cache-line boundaries, so the wide loads and
// stores of the kernels never straddle two lines) now live in
// `subtab_kernels::AlignedBuf`, shared with every other SIMD consumer.

/// Scratch state of one worker, kept across epochs so the learning-rate
/// schedule and draw stream continue seamlessly.
struct ShardState {
    /// Counter for the counter-based negative-sampling stream: each draw is
    /// `splitmix64(ctr + k)`, so consecutive draws are independent
    /// computations the CPU can overlap (a stateful generator would chain
    /// them), while staying fully deterministic per shard.
    ctr: u64,
    processed: usize,
    center: Vec<f32>,
    grad: Vec<f32>,
}

impl ShardState {
    fn new(seed: u64, shard: usize, dim: usize) -> Self {
        ShardState {
            ctr: seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            processed: 0,
            center: vec![0.0f32; dim],
            grad: vec![0.0f32; dim],
        }
    }
}

/// splitmix64: the standard 2-multiply finaliser, used as a counter-based
/// bit stream for negative sampling.
#[inline(always)]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trains one shard for one epoch with the fast kernels. `lr_total` is the
/// shard's full schedule length (`shard pairs × epochs`), so the linear
/// decay matches the single-threaded trainer's shape per stream.
///
/// Dispatches to a const-generic kernel for the common dimensionalities so
/// the dot-product and update loops fully unroll and vectorise; other
/// dimensions fall back to a runtime-length kernel.
///
/// # Safety
/// `w` must point into live matrices with `vocab × dim` elements; rows may
/// be written concurrently by other workers only under the Hogwild contract
/// documented on [`WeightsPtr`].
#[allow(clippy::too_many_arguments)]
unsafe fn train_shard_fast(
    pairs: &[[u32; 2]],
    w: WeightsPtr,
    alias: &AliasTable,
    sig: &SigmoidTable,
    negative_samples: usize,
    lr0: f32,
    lr_total: usize,
    state: &mut ShardState,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // Shared runtime dispatch (honours `SUBTAB_FORCE_SCALAR_KERNELS`,
        // which CI uses to exercise the portable path on any machine).
        if subtab_kernels::has_avx512f() && w.dim.is_multiple_of(16) && w.dim <= 64 {
            return shard_kernel_avx512(
                pairs,
                w,
                alias,
                sig,
                negative_samples,
                lr0,
                lr_total,
                state,
            );
        }
        if subtab_kernels::has_avx2_fma() {
            match w.dim {
                8 => {
                    return shard_kernel_fma::<8>(
                        pairs,
                        w,
                        alias,
                        sig,
                        negative_samples,
                        lr0,
                        lr_total,
                        state,
                    )
                }
                16 => {
                    return shard_kernel_fma::<16>(
                        pairs,
                        w,
                        alias,
                        sig,
                        negative_samples,
                        lr0,
                        lr_total,
                        state,
                    )
                }
                32 => {
                    return shard_kernel_fma::<32>(
                        pairs,
                        w,
                        alias,
                        sig,
                        negative_samples,
                        lr0,
                        lr_total,
                        state,
                    )
                }
                64 => {
                    return shard_kernel_fma::<64>(
                        pairs,
                        w,
                        alias,
                        sig,
                        negative_samples,
                        lr0,
                        lr_total,
                        state,
                    )
                }
                _ => {}
            }
        }
    }
    match w.dim {
        8 => shard_kernel::<8>(pairs, w, alias, sig, negative_samples, lr0, lr_total, state),
        16 => shard_kernel::<16>(pairs, w, alias, sig, negative_samples, lr0, lr_total, state),
        32 => shard_kernel::<32>(pairs, w, alias, sig, negative_samples, lr0, lr_total, state),
        64 => shard_kernel::<64>(pairs, w, alias, sig, negative_samples, lr0, lr_total, state),
        _ => shard_kernel_dyn(pairs, w, alias, sig, negative_samples, lr0, lr_total, state),
    }
}

/// The fixed-dimension kernel body, shared by the portable and the
/// FMA-enabled entry points. `FUSED` selects `mul_add` (compiled to a real
/// `vfmadd` only under the `fma` target feature — never call it without)
/// versus separate multiply-add.
///
/// # Safety
/// See [`train_shard_fast`]; additionally `w.dim` must equal `DIM`.
#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn kernel_body<const DIM: usize, const FUSED: bool>(
    pairs: &[[u32; 2]],
    w: WeightsPtr,
    alias: &AliasTable,
    sig: &SigmoidTable,
    negative_samples: usize,
    lr0: f32,
    lr_total: usize,
    state: &mut ShardState,
) {
    debug_assert_eq!(w.dim, DIM);
    let inv_total = 1.0 / (lr_total as f32 + 1.0);
    let mut center = [0.0f32; DIM];
    for &[center_id, context] in pairs {
        let lr = lr0 * (1.0 - state.processed as f32 * inv_total).max(0.1);
        state.processed += 1;

        let in_row = w.w_in.add(center_id as usize * DIM);
        for d in 0..DIM {
            center[d] = *in_row.add(d);
        }
        let mut grad = [0.0f32; DIM];
        let ctr = state.ctr;
        state.ctr = ctr.wrapping_add(1);
        let mut draws = [0u64; 32];
        for (k, d) in draws.iter_mut().enumerate().take(negative_samples.min(32)) {
            *d = splitmix64(ctr.wrapping_mul(32).wrapping_add(k as u64));
        }
        for neg in 0..=negative_samples {
            let (target, label) = if neg == 0 {
                (context, 1.0f32)
            } else if neg <= 32 {
                (alias.sample_from_u64(draws[neg - 1]), 0.0f32)
            } else {
                (
                    alias.sample_from_u64(splitmix64(
                        ctr.wrapping_mul(997).wrapping_add(neg as u64),
                    )),
                    0.0f32,
                )
            };
            if label == 0.0 && target == context {
                continue;
            }
            let out = w.w_out.add(target as usize * DIM);
            // Lane-parallel partial sums: a strict sequential reduction
            // would chain DIM scalar FMAs (FP adds cannot be reordered by
            // the compiler), serialising the whole kernel. Eight
            // accumulators let LLVM emit wide FMAs with a single horizontal
            // reduction at the end; the fast path owns its numerics, so the
            // reassociation is fine.
            let lanes = if DIM >= 8 { 8 } else { DIM };
            let mut acc = [0.0f32; 8];
            let mut d = 0;
            while d + lanes <= DIM {
                for l in 0..lanes {
                    acc[l] = fma_select::<FUSED>(center[d + l], *out.add(d + l), acc[l]);
                }
                d += lanes;
            }
            // Tree reduction: 3 levels instead of 7 chained adds.
            let mut dot = if lanes == 8 {
                ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
            } else {
                let mut t = 0.0f32;
                for l in 0..lanes {
                    t += acc[l];
                }
                t
            };
            while d < DIM {
                dot = fma_select::<FUSED>(center[d], *out.add(d), dot);
                d += 1;
            }
            let g = (label - sig.value(dot)) * lr;
            for d in 0..DIM {
                grad[d] = fma_select::<FUSED>(g, *out.add(d), grad[d]);
                *out.add(d) = fma_select::<FUSED>(g, center[d], *out.add(d));
            }
        }
        for d in 0..DIM {
            *in_row.add(d) += grad[d];
        }
    }
}

/// Portable fixed-dimension kernel: scratch lives in stack arrays, every
/// inner loop has a compile-time trip count.
///
/// # Safety
/// See [`train_shard_fast`]; additionally `w.dim` must equal `DIM`.
#[allow(clippy::too_many_arguments)]
unsafe fn shard_kernel<const DIM: usize>(
    pairs: &[[u32; 2]],
    w: WeightsPtr,
    alias: &AliasTable,
    sig: &SigmoidTable,
    negative_samples: usize,
    lr0: f32,
    lr_total: usize,
    state: &mut ShardState,
) {
    kernel_body::<DIM, false>(pairs, w, alias, sig, negative_samples, lr0, lr_total, state)
}

/// AVX2+FMA variant of the kernel, dispatched at runtime: the compile-time
/// trip counts vectorise to 256-bit fused multiply-adds. Fast-path numerics
/// therefore differ between machines with and without FMA, but stay
/// run-to-run reproducible on any one machine.
///
/// # Safety
/// See [`shard_kernel`]; the caller must additionally have verified that the
/// CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn shard_kernel_fma<const DIM: usize>(
    pairs: &[[u32; 2]],
    w: WeightsPtr,
    alias: &AliasTable,
    sig: &SigmoidTable,
    negative_samples: usize,
    lr0: f32,
    lr_total: usize,
    state: &mut ShardState,
) {
    kernel_body::<DIM, true>(pairs, w, alias, sig, negative_samples, lr0, lr_total, state)
}

/// AVX-512 kernel for dimensions that are a multiple of 16 (at most 64): a
/// row is one to four zmm registers, so the whole positive/negative update
/// is a handful of fused multiply-adds with no scalar tail at all. The
/// shard is walked as two interleaved halves — consecutive loop iterations
/// then carry no data dependency on each other (far-apart pairs touch
/// unrelated rows), which roughly doubles the instruction-level parallelism
/// of the latency-bound draw→dot→sigmoid→update chain. Each pair keeps the
/// learning-rate index and draw counter it would have had sequentially, so
/// the result is deterministic and scheduling-independent.
///
/// # Safety
/// See [`shard_kernel`]; the caller must have verified AVX-512F support and
/// that `w.dim % 16 == 0 && w.dim <= 64`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn shard_kernel_avx512(
    pairs: &[[u32; 2]],
    w: WeightsPtr,
    alias: &AliasTable,
    sig: &SigmoidTable,
    negative_samples: usize,
    lr0: f32,
    lr_total: usize,
    state: &mut ShardState,
) {
    let chunks = w.dim / 16;
    debug_assert!((1..=4).contains(&chunks) && w.dim.is_multiple_of(16));
    let inv_total = 1.0 / (lr_total as f32 + 1.0);
    let base_processed = state.processed;
    let base_ctr = state.ctr;
    state.processed += pairs.len();
    state.ctr = base_ctr.wrapping_add(pairs.len() as u64);

    let half = pairs.len() / 2;
    for i in 0..half {
        for (idx, pair) in [(i, pairs[i]), (half + i, pairs[half + i])] {
            let lr = lr0 * (1.0 - (base_processed + idx) as f32 * inv_total).max(0.1);
            avx512_pair_step(
                pair,
                lr,
                base_ctr.wrapping_add(idx as u64),
                w,
                chunks,
                alias,
                sig,
                negative_samples,
            );
        }
    }
    if pairs.len() % 2 == 1 {
        let idx = pairs.len() - 1;
        let lr = lr0 * (1.0 - (base_processed + idx) as f32 * inv_total).max(0.1);
        avx512_pair_step(
            pairs[idx],
            lr,
            base_ctr.wrapping_add(idx as u64),
            w,
            chunks,
            alias,
            sig,
            negative_samples,
        );
    }
}

/// One pair's positive + negative updates in the AVX-512 kernel. All
/// targets are drawn and all dot products computed before any update: the
/// reductions are independent dependency chains the CPU overlaps, instead
/// of one serial draw→dot→sigmoid→update chain per sample. A dot therefore
/// reads each out-row as it was before this pair's updates — staleness
/// Hogwild already embraces, and still deterministic because program order
/// is fixed.
///
/// # Safety
/// See [`shard_kernel_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn avx512_pair_step(
    [center_id, context]: [u32; 2],
    lr: f32,
    ctr: u64,
    w: WeightsPtr,
    chunks: usize,
    alias: &AliasTable,
    sig: &SigmoidTable,
    negative_samples: usize,
) {
    use core::arch::x86_64::*;
    let mut center = [_mm512_setzero_ps(); 4];
    let mut grad = [_mm512_setzero_ps(); 4];
    let in_row = w.w_in.add(center_id as usize * w.dim);
    for c in 0..chunks {
        center[c] = _mm512_loadu_ps(in_row.add(c * 16));
    }
    let total = 1 + negative_samples;
    if total <= 8 {
        let mut targets = [0u32; 8];
        let mut dots = [0.0f32; 8];
        targets[0] = context;
        for (k, t) in targets.iter_mut().enumerate().take(total).skip(1) {
            *t = alias.sample_from_u64(splitmix64(
                ctr.wrapping_mul(0x632B_E5AB).wrapping_add(k as u64),
            ));
        }
        for k in 0..total {
            let out = w.w_out.add(targets[k] as usize * w.dim);
            let mut acc = _mm512_mul_ps(center[0], _mm512_loadu_ps(out));
            for c in 1..chunks {
                acc = _mm512_fmadd_ps(center[c], _mm512_loadu_ps(out.add(c * 16)), acc);
            }
            dots[k] = _mm512_reduce_add_ps(acc);
        }
        for k in 0..total {
            let target = targets[k];
            if k > 0 && target == context {
                continue;
            }
            let label = if k == 0 { 1.0f32 } else { 0.0f32 };
            let g = (label - sig.value(dots[k])) * lr;
            let gv = _mm512_set1_ps(g);
            let out = w.w_out.add(target as usize * w.dim);
            for c in 0..chunks {
                let ov = _mm512_loadu_ps(out.add(c * 16));
                grad[c] = _mm512_fmadd_ps(gv, ov, grad[c]);
                _mm512_storeu_ps(out.add(c * 16), _mm512_fmadd_ps(gv, center[c], ov));
            }
        }
    } else {
        for neg in 0..=negative_samples {
            let (target, label) = if neg == 0 {
                (context, 1.0f32)
            } else {
                (
                    alias.sample_from_u64(splitmix64(
                        ctr.wrapping_mul(0x632B_E5AB).wrapping_add(neg as u64),
                    )),
                    0.0f32,
                )
            };
            if label == 0.0 && target == context {
                continue;
            }
            let out = w.w_out.add(target as usize * w.dim);
            let mut acc = _mm512_mul_ps(center[0], _mm512_loadu_ps(out));
            for c in 1..chunks {
                acc = _mm512_fmadd_ps(center[c], _mm512_loadu_ps(out.add(c * 16)), acc);
            }
            let dot = _mm512_reduce_add_ps(acc);
            let g = (label - sig.value(dot)) * lr;
            let gv = _mm512_set1_ps(g);
            for c in 0..chunks {
                let ov = _mm512_loadu_ps(out.add(c * 16));
                grad[c] = _mm512_fmadd_ps(gv, ov, grad[c]);
                _mm512_storeu_ps(out.add(c * 16), _mm512_fmadd_ps(gv, center[c], ov));
            }
        }
    }
    for c in 0..chunks {
        let iv = _mm512_loadu_ps(in_row.add(c * 16));
        _mm512_storeu_ps(in_row.add(c * 16), _mm512_add_ps(iv, grad[c]));
    }
}

/// Runtime-dimension fallback of [`shard_kernel`], using the worker's
/// scratch vectors.
///
/// # Safety
/// See [`train_shard_fast`].
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn shard_kernel_dyn(
    pairs: &[[u32; 2]],
    w: WeightsPtr,
    alias: &AliasTable,
    sig: &SigmoidTable,
    negative_samples: usize,
    lr0: f32,
    lr_total: usize,
    state: &mut ShardState,
) {
    let dim = w.dim;
    let inv_total = 1.0 / (lr_total as f32 + 1.0);
    for &[center, context] in pairs {
        let lr = lr0 * (1.0 - state.processed as f32 * inv_total).max(0.1);
        state.processed += 1;

        state.center.copy_from_slice(w.in_row(center));
        state.grad.iter_mut().for_each(|g| *g = 0.0);
        let ctr = state.ctr;
        state.ctr = ctr.wrapping_add(negative_samples as u64);
        for neg in 0..=negative_samples {
            let (target, label) = if neg == 0 {
                (context, 1.0f32)
            } else {
                (
                    alias.sample_from_u64(splitmix64(ctr.wrapping_add(neg as u64 - 1))),
                    0.0f32,
                )
            };
            if label == 0.0 && target == context {
                continue;
            }
            let out = w.out_row(target);
            let mut dot = 0.0f32;
            for d in 0..dim {
                dot += state.center[d] * out[d];
            }
            let g = (label - sig.value(dot)) * lr;
            for d in 0..dim {
                state.grad[d] += g * out[d];
                out[d] += g * state.center[d];
            }
        }
        let center_row = w.in_row(center);
        for d in 0..dim {
            center_row[d] += state.grad[d];
        }
    }
}

/// Fast kernels on a single thread: one shard, one RNG stream, exclusive
/// weight access — reproducible run to run, but not bit-compatible with the
/// reference path (table sigmoid, alias draws).
fn train_fast_sequential(
    vocab: &Vocab,
    config: &EmbeddingConfig,
    pairs: &[[u32; 2]],
    w_in: &mut [f32],
    w_out: &mut [f32],
) {
    let dim = config.dim.max(1);
    let epochs = config.epochs.max(1);
    let sig = SigmoidTable::new();
    let alias = vocab.alias_table();
    let mut a_in = AlignedBuf::from_slice(w_in);
    let mut a_out = AlignedBuf::from_slice(w_out);
    let w = WeightsPtr::new(a_in.as_mut_slice(), a_out.as_mut_slice(), dim);
    let mut state = ShardState::new(config.seed, 0, dim);
    for _ in 0..epochs {
        // SAFETY: exclusive access — no other worker exists.
        unsafe {
            train_shard_fast(
                pairs,
                w,
                alias,
                &sig,
                config.negative_samples,
                config.learning_rate,
                pairs.len() * epochs,
                &mut state,
            );
        }
    }
    a_in.copy_back(w_in);
    a_out.copy_back(w_out);
}

/// Hogwild: every worker trains its shard against the shared matrices with
/// no synchronisation at all (scoped threads, racy f32 updates). Fastest
/// mode; repeated runs differ in the low bits whenever shards truly race.
fn train_hogwild(
    vocab: &Vocab,
    config: &EmbeddingConfig,
    pairs: &[[u32; 2]],
    threads: usize,
    w_in: &mut [f32],
    w_out: &mut [f32],
) {
    let dim = config.dim.max(1);
    let epochs = config.epochs.max(1);
    let sig = &SigmoidTable::new();
    let alias = vocab.alias_table();
    let shards = shard_pairs(pairs, threads);
    let mut a_in = AlignedBuf::from_slice(w_in);
    let mut a_out = AlignedBuf::from_slice(w_out);
    let w = WeightsPtr::new(a_in.as_mut_slice(), a_out.as_mut_slice(), dim);
    std::thread::scope(|scope| {
        for (i, shard) in shards.into_iter().enumerate() {
            let mut state = ShardState::new(config.seed, i, dim);
            scope.spawn(move || {
                for _ in 0..epochs {
                    // SAFETY: Hogwild contract on `WeightsPtr`; the scope
                    // keeps the matrices alive until every worker joins.
                    unsafe {
                        train_shard_fast(
                            shard,
                            w,
                            alias,
                            sig,
                            config.negative_samples,
                            config.learning_rate,
                            shard.len() * epochs,
                            &mut state,
                        );
                    }
                }
            });
        }
    });
    a_in.copy_back(w_in);
    a_out.copy_back(w_out);
}

/// Deterministic parallel mode: each worker trains a private replica of the
/// weights on its shard for one epoch; replicas are then averaged into the
/// master in worker order. Every worker's arithmetic depends only on its
/// shard, replica and RNG stream — never on scheduling — so repeated runs
/// are bit-identical even at high thread counts.
fn train_sharded_averaged(
    vocab: &Vocab,
    config: &EmbeddingConfig,
    pairs: &[[u32; 2]],
    threads: usize,
    w_in: &mut [f32],
    w_out: &mut [f32],
) {
    let dim = config.dim.max(1);
    let epochs = config.epochs.max(1);
    let sig = &SigmoidTable::new();
    let alias = vocab.alias_table();
    let shards = shard_pairs(pairs, threads);
    let n = shards.len();

    // Replica contents are overwritten from the master at the top of every
    // epoch, so construction only needs correctly-sized zeroed storage.
    let mut replicas: Vec<(AlignedBuf, AlignedBuf)> = (0..n)
        .map(|_| {
            (
                AlignedBuf::zeroed(w_in.len()),
                AlignedBuf::zeroed(w_out.len()),
            )
        })
        .collect();
    let mut states: Vec<ShardState> = (0..n)
        .map(|i| ShardState::new(config.seed, i, dim))
        .collect();

    for _epoch in 0..epochs {
        for (rin, rout) in replicas.iter_mut() {
            rin.as_mut_slice().copy_from_slice(w_in);
            rout.as_mut_slice().copy_from_slice(w_out);
        }
        std::thread::scope(|scope| {
            for ((shard, (rin, rout)), state) in shards
                .iter()
                .zip(replicas.iter_mut())
                .zip(states.iter_mut())
            {
                let shard: &[[u32; 2]] = shard;
                scope.spawn(move || {
                    let w = WeightsPtr::new(rin.as_mut_slice(), rout.as_mut_slice(), dim);
                    // SAFETY: exclusive access — each worker owns its replica.
                    unsafe {
                        train_shard_fast(
                            shard,
                            w,
                            alias,
                            sig,
                            config.negative_samples,
                            config.learning_rate,
                            shard.len() * epochs,
                            state,
                        );
                    }
                });
            }
        });
        average_into(w_in, replicas.iter().map(|r| r.0.as_slice()));
        average_into(w_out, replicas.iter().map(|r| r.1.as_slice()));
    }
}

/// Overwrites `master` with the element-wise mean of `sources`, accumulated
/// in iteration order so the result is scheduling-independent.
fn average_into<'a>(master: &mut [f32], sources: impl Iterator<Item = &'a [f32]>) {
    let mut n = 0usize;
    master.iter_mut().for_each(|m| *m = 0.0);
    for src in sources {
        n += 1;
        for (m, s) in master.iter_mut().zip(src) {
            *m += s;
        }
    }
    if n > 0 {
        let inv = 1.0 / n as f32;
        master.iter_mut().for_each(|m| *m *= inv);
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[inline]
fn row(m: &[f32], idx: u32, dim: usize) -> &[f32] {
    let start = idx as usize * dim;
    &m[start..start + dim]
}

#[inline]
fn row_mut(m: &mut [f32], idx: u32, dim: usize) -> &mut [f32] {
    let start = idx as usize * dim;
    &mut m[start..start + dim]
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    /// Table with a strong co-occurrence pattern: a=0 ⇔ b="x", a=1 ⇔ b="y",
    /// while column c is uncorrelated noise.
    fn patterned_binned(rows: usize) -> BinnedTable {
        let t = Table::builder()
            .column_i64("a", (0..rows).map(|i| Some((i % 2) as i64)).collect())
            .column_str(
                "b",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "x" } else { "y" }))
                    .collect(),
            )
            .column_i64("c", (0..rows).map(|i| Some((i % 5) as i64)).collect())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    fn small_config() -> EmbeddingConfig {
        EmbeddingConfig {
            dim: 16,
            epochs: 8,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let bt = patterned_binned(60);
        let cfg = small_config();
        let a = train_embedding(&bt, &cfg);
        let b = train_embedding(&bt, &cfg);
        for token in a.tokens() {
            assert_eq!(a.vector(token), b.vector(token));
        }
    }

    #[test]
    fn co_occurring_tokens_are_closer_than_unrelated_ones() {
        let bt = patterned_binned(120);
        let emb = train_embedding(&bt, &small_config());
        let a0 = {
            let c = bt.column_index("a").unwrap();
            bt.cell_token(0, c)
        };
        let b_x = {
            let c = bt.column_index("b").unwrap();
            bt.cell_token(0, c)
        };
        let b_y = {
            let c = bt.column_index("b").unwrap();
            bt.cell_token(1, c)
        };
        let sim_pos = emb.cosine(&a0, &b_x).unwrap();
        let sim_neg = emb.cosine(&a0, &b_y).unwrap();
        assert!(
            sim_pos > sim_neg,
            "expected cos(a=0, b=x) = {sim_pos} > cos(a=0, b=y) = {sim_neg}"
        );
    }

    #[test]
    fn every_used_bin_gets_a_vector_of_the_right_dimension() {
        let bt = patterned_binned(40);
        let cfg = small_config();
        let emb = train_embedding(&bt, &cfg);
        for r in 0..bt.num_rows() {
            for c in 0..bt.num_columns() {
                let v = emb.vector(&bt.cell_token(r, c)).expect("vector exists");
                assert_eq!(v.len(), cfg.dim);
                assert!(v.iter().all(|x| x.is_finite()));
            }
        }
    }

    #[test]
    fn empty_corpus_yields_empty_embedding() {
        let t = Table::builder()
            .column_i64("a", Vec::new())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        let emb = train_embedding(&bt, &EmbeddingConfig::default());
        assert_eq!(emb.len(), 0);
    }

    #[test]
    fn full_sentence_window_works() {
        let bt = patterned_binned(30);
        let cfg = EmbeddingConfig {
            window: None,
            epochs: 2,
            dim: 8,
            ..Default::default()
        };
        let emb = train_embedding(&bt, &cfg);
        assert!(!emb.is_empty());
    }

    /// The closed-form pair count must agree with brute-force window
    /// enumeration for every window size, including the edge cases the old
    /// `len * min(2w, len - 1)` formula overcounted.
    #[test]
    fn count_pairs_is_exact() {
        let brute = |sentences: &[Vec<u32>], window: Option<usize>| -> usize {
            sentences
                .iter()
                .map(|s| {
                    let len = s.len();
                    let mut n = 0usize;
                    for i in 0..len {
                        let (lo, hi) = match window {
                            Some(w) => (i.saturating_sub(w), (i + w + 1).min(len)),
                            None => (0, len),
                        };
                        n += (lo..hi).filter(|&j| j != i).count();
                    }
                    n
                })
                .sum()
        };
        let sentence_sets: Vec<Vec<Vec<u32>>> = vec![
            vec![],
            vec![vec![]],
            vec![vec![1]],
            vec![vec![1, 2]],
            vec![vec![1, 2, 3, 4, 5]],
            vec![(0..17).collect(), (0..3).collect(), vec![9]],
            vec![(0..64).collect()],
        ];
        for sentences in sentence_sets {
            let corpus = Corpus {
                sentences: sentences.clone(),
                vocab: Default::default(),
            };
            for window in [None, Some(0), Some(1), Some(2), Some(5), Some(8), Some(100)] {
                assert_eq!(
                    count_pairs(&corpus, window),
                    brute(&sentences, window),
                    "window {window:?} on {sentences:?}"
                );
                assert_eq!(
                    flatten_pairs(&corpus, window).len(),
                    brute(&sentences, window),
                    "flattened count, window {window:?}"
                );
            }
        }
    }

    #[test]
    fn sigmoid_table_approximates_sigmoid() {
        let sig = SigmoidTable::new();
        // Saturated inputs clamp to the table ends (≈ σ(±6)), like gensim.
        assert!((sig.value(100.0) - 1.0).abs() < 0.01);
        assert!(sig.value(100.0) > sig.value(5.0));
        assert!(sig.value(-100.0) < 0.01);
        assert!(sig.value(-100.0) < sig.value(-5.0));
        let mut x = -5.9f32;
        while x < 5.9 {
            assert!(
                (sig.value(x) - sigmoid(x)).abs() < 0.02,
                "table diverges at {x}: {} vs {}",
                sig.value(x),
                sigmoid(x)
            );
            x += 0.037;
        }
        // Midpoint symmetry around zero.
        assert!((sig.value(0.0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn fast_sequential_mode_is_reproducible_and_sane() {
        let bt = patterned_binned(120);
        let cfg = EmbeddingConfig {
            deterministic: false,
            // Full-sentence windows over row sentences only: column
            // sentences link alternating values of the same column, which
            // dilutes the planted cross-column signal this test asserts.
            window: None,
            include_column_sentences: false,
            ..small_config()
        };
        let a = train_embedding(&bt, &cfg);
        let b = train_embedding(&bt, &cfg);
        for token in a.tokens() {
            assert_eq!(a.vector(token), b.vector(token));
            assert!(a.vector(token).unwrap().iter().all(|x| x.is_finite()));
        }
        // Same qualitative structure as the reference trainer.
        let a_col = bt.column_index("a").unwrap();
        let b_col = bt.column_index("b").unwrap();
        let sim_pos = a
            .cosine(&bt.cell_token(0, a_col), &bt.cell_token(0, b_col))
            .unwrap();
        let sim_neg = a
            .cosine(&bt.cell_token(0, a_col), &bt.cell_token(1, b_col))
            .unwrap();
        assert!(sim_pos > sim_neg);
    }

    #[test]
    fn hogwild_mode_trains_finite_vectors() {
        let bt = patterned_binned(60);
        let cfg = EmbeddingConfig {
            threads: 4,
            deterministic: false,
            ..small_config()
        };
        let emb = train_embedding(&bt, &cfg);
        assert!(!emb.is_empty());
        for token in emb.tokens() {
            assert!(emb.vector(token).unwrap().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn deterministic_parallel_mode_is_run_to_run_reproducible() {
        let bt = patterned_binned(60);
        let cfg = EmbeddingConfig {
            threads: 4,
            deterministic: true,
            ..small_config()
        };
        let a = train_embedding(&bt, &cfg);
        let b = train_embedding(&bt, &cfg);
        for token in a.tokens() {
            assert_eq!(a.vector(token), b.vector(token), "token {token}");
        }
    }

    #[test]
    fn threads_zero_resolves_to_available_parallelism() {
        let cfg = EmbeddingConfig {
            threads: 0,
            ..Default::default()
        };
        assert!(cfg.effective_threads() >= 1);
        let bt = patterned_binned(30);
        let emb = train_embedding(
            &bt,
            &EmbeddingConfig {
                threads: 0,
                epochs: 2,
                dim: 8,
                ..Default::default()
            },
        );
        assert!(!emb.is_empty());
    }
}
