//! Skip-gram with negative sampling (SGNS), the Word2Vec variant used by the
//! paper's reference implementation (via gensim).

use crate::corpus::{build_corpus, Corpus, CorpusOptions};
use crate::model::CellEmbedding;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use subtab_binning::BinnedTable;

/// Hyper-parameters of the embedding step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Dimensionality of the cell vectors (γ in the paper's notation).
    pub dim: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10% over training).
    pub learning_rate: f32,
    /// Number of negative samples per positive pair.
    pub negative_samples: usize,
    /// Context window. `None` uses the whole sentence as context, matching
    /// the paper's `windowSize = max(n, m)`; a small value (e.g. 8) trades a
    /// little fidelity for much faster training on long sentences.
    pub window: Option<usize>,
    /// Maximum number of sentences in the corpus (paper: 100 000).
    pub max_sentences: usize,
    /// Chunk length for column sentences.
    pub max_column_sentence_len: usize,
    /// Whether column sentences are included in the corpus.
    pub include_column_sentences: bool,
    /// RNG seed (initialisation, negative sampling, corpus subsample).
    pub seed: u64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dim: 32,
            epochs: 3,
            learning_rate: 0.025,
            negative_samples: 5,
            window: Some(8),
            max_sentences: 100_000,
            max_column_sentence_len: 64,
            include_column_sentences: true,
            seed: 42,
        }
    }
}

impl EmbeddingConfig {
    fn corpus_options(&self) -> CorpusOptions {
        CorpusOptions {
            max_sentences: self.max_sentences,
            max_column_sentence_len: self.max_column_sentence_len,
            include_column_sentences: self.include_column_sentences,
            seed: self.seed,
        }
    }
}

/// Trains cell embeddings for a binned table: builds the tabular-sentence
/// corpus and runs SGNS over it. This is the expensive half of SubTab's
/// pre-processing phase.
pub fn train_embedding(binned: &BinnedTable, config: &EmbeddingConfig) -> CellEmbedding {
    let corpus = build_corpus(binned, &config.corpus_options());
    train_on_corpus(&corpus, config)
}

/// Trains SGNS on an already-built corpus (exposed for ablation benches).
pub fn train_on_corpus(corpus: &Corpus, config: &EmbeddingConfig) -> CellEmbedding {
    let vocab_size = corpus.vocab.len();
    let dim = config.dim.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    if vocab_size == 0 {
        return CellEmbedding::new(dim, Vec::new(), Vec::new());
    }

    // Word2Vec-style initialisation: input vectors uniform in
    // [-0.5/dim, 0.5/dim], output vectors zero.
    let mut w_in: Vec<f32> = (0..vocab_size * dim)
        .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
        .collect();
    let mut w_out: Vec<f32> = vec![0.0; vocab_size * dim];

    let total_pairs: usize = count_pairs(corpus, config.window) * config.epochs.max(1);
    let mut processed = 0usize;
    let lr0 = config.learning_rate;
    let mut grad_in = vec![0.0f32; dim];

    for _epoch in 0..config.epochs.max(1) {
        for sentence in &corpus.sentences {
            let len = sentence.len();
            for (i, &center) in sentence.iter().enumerate() {
                let (lo, hi) = match config.window {
                    Some(w) => (i.saturating_sub(w), (i + w + 1).min(len)),
                    None => (0, len),
                };
                for (j, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    let lr = lr0 * (1.0 - processed as f32 / (total_pairs as f32 + 1.0)).max(0.1);
                    processed += 1;

                    // One positive + `negative_samples` negative updates.
                    grad_in.iter_mut().for_each(|g| *g = 0.0);
                    let center_vec = i_slice(&w_in, center, dim).to_vec();
                    for neg in 0..=config.negative_samples {
                        let (target, label) = if neg == 0 {
                            (context, 1.0f32)
                        } else {
                            (corpus.vocab.sample_negative(&mut rng), 0.0f32)
                        };
                        if label == 0.0 && target == context {
                            continue;
                        }
                        let out = m_slice(&mut w_out, target, dim);
                        let dot: f32 = center_vec.iter().zip(out.iter()).map(|(a, b)| a * b).sum();
                        let pred = sigmoid(dot);
                        let g = (label - pred) * lr;
                        for d in 0..dim {
                            grad_in[d] += g * out[d];
                            out[d] += g * center_vec[d];
                        }
                    }
                    let center_slice = m_slice(&mut w_in, center, dim);
                    for d in 0..dim {
                        center_slice[d] += grad_in[d];
                    }
                }
            }
        }
    }

    let tokens = corpus.vocab.tokens().to_vec();
    let vectors: Vec<Vec<f32>> = (0..vocab_size)
        .map(|i| i_slice(&w_in, i as u32, dim).to_vec())
        .collect();
    CellEmbedding::new(dim, tokens, vectors)
}

fn count_pairs(corpus: &Corpus, window: Option<usize>) -> usize {
    corpus
        .sentences
        .iter()
        .map(|s| {
            let len = s.len();
            match window {
                Some(w) => len * (2 * w).min(len.saturating_sub(1)),
                None => len * len.saturating_sub(1),
            }
        })
        .sum()
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[inline]
fn i_slice(m: &[f32], idx: u32, dim: usize) -> &[f32] {
    let start = idx as usize * dim;
    &m[start..start + dim]
}

#[inline]
fn m_slice(m: &mut [f32], idx: u32, dim: usize) -> &mut [f32] {
    let start = idx as usize * dim;
    &mut m[start..start + dim]
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    /// Table with a strong co-occurrence pattern: a=0 ⇔ b="x", a=1 ⇔ b="y",
    /// while column c is uncorrelated noise.
    fn patterned_binned(rows: usize) -> BinnedTable {
        let t = Table::builder()
            .column_i64("a", (0..rows).map(|i| Some((i % 2) as i64)).collect())
            .column_str(
                "b",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "x" } else { "y" }))
                    .collect(),
            )
            .column_i64("c", (0..rows).map(|i| Some((i % 5) as i64)).collect())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    fn small_config() -> EmbeddingConfig {
        EmbeddingConfig {
            dim: 16,
            epochs: 8,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let bt = patterned_binned(60);
        let cfg = small_config();
        let a = train_embedding(&bt, &cfg);
        let b = train_embedding(&bt, &cfg);
        for token in a.tokens() {
            assert_eq!(a.vector(token), b.vector(token));
        }
    }

    #[test]
    fn co_occurring_tokens_are_closer_than_unrelated_ones() {
        let bt = patterned_binned(120);
        let emb = train_embedding(&bt, &small_config());
        let a0 = {
            let c = bt.column_index("a").unwrap();
            bt.cell_token(0, c)
        };
        let b_x = {
            let c = bt.column_index("b").unwrap();
            bt.cell_token(0, c)
        };
        let b_y = {
            let c = bt.column_index("b").unwrap();
            bt.cell_token(1, c)
        };
        let sim_pos = emb.cosine(&a0, &b_x).unwrap();
        let sim_neg = emb.cosine(&a0, &b_y).unwrap();
        assert!(
            sim_pos > sim_neg,
            "expected cos(a=0, b=x) = {sim_pos} > cos(a=0, b=y) = {sim_neg}"
        );
    }

    #[test]
    fn every_used_bin_gets_a_vector_of_the_right_dimension() {
        let bt = patterned_binned(40);
        let cfg = small_config();
        let emb = train_embedding(&bt, &cfg);
        for r in 0..bt.num_rows() {
            for c in 0..bt.num_columns() {
                let v = emb.vector(&bt.cell_token(r, c)).expect("vector exists");
                assert_eq!(v.len(), cfg.dim);
                assert!(v.iter().all(|x| x.is_finite()));
            }
        }
    }

    #[test]
    fn empty_corpus_yields_empty_embedding() {
        let t = Table::builder()
            .column_i64("a", Vec::new())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        let emb = train_embedding(&bt, &EmbeddingConfig::default());
        assert_eq!(emb.len(), 0);
    }

    #[test]
    fn full_sentence_window_works() {
        let bt = patterned_binned(30);
        let cfg = EmbeddingConfig {
            window: None,
            epochs: 2,
            dim: 8,
            ..Default::default()
        };
        let emb = train_embedding(&bt, &cfg);
        assert!(!emb.is_empty());
    }
}
