//! Token vocabulary and negative-sampling table.

use rand::Rng;
use std::collections::HashMap;

/// A vocabulary of tokens with occurrence counts and a pre-computed
/// negative-sampling table using the Word2Vec unigram^0.75 distribution.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, u32>,
    counts: Vec<u64>,
    sampling_table: Vec<u32>,
}

impl Vocab {
    /// Size of the negative-sampling table (Word2Vec uses 10^8; our
    /// vocabularies are tiny, so a much smaller table gives the same
    /// distribution).
    const SAMPLING_TABLE_SIZE: usize = 1 << 16;

    /// Interns a token, returning its id and incrementing its count.
    pub fn add(&mut self, token: &str) -> u32 {
        match self.index.get(token) {
            Some(&id) => {
                self.counts[id as usize] += 1;
                id
            }
            None => {
                let id = self.tokens.len() as u32;
                self.tokens.push(token.to_string());
                self.index.insert(token.to_string(), id);
                self.counts.push(1);
                id
            }
        }
    }

    /// Id of a token, if present.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Token text for an id.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Occurrence count of a token id.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Builds the negative-sampling table. Must be called after all tokens
    /// have been added and before [`Vocab::sample_negative`].
    pub fn build_sampling_table(&mut self) {
        self.sampling_table.clear();
        if self.tokens.is_empty() {
            return;
        }
        let weights: Vec<f64> = self.counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        self.sampling_table.reserve(Self::SAMPLING_TABLE_SIZE);
        let mut cumulative = 0.0;
        let mut id = 0usize;
        for i in 0..Self::SAMPLING_TABLE_SIZE {
            let target = (i as f64 + 0.5) / Self::SAMPLING_TABLE_SIZE as f64;
            while id + 1 < weights.len() && cumulative + weights[id] / total < target {
                cumulative += weights[id] / total;
                id += 1;
            }
            self.sampling_table.push(id as u32);
        }
    }

    /// Draws a token id from the unigram^0.75 distribution.
    ///
    /// Panics if [`Vocab::build_sampling_table`] has not been called on a
    /// non-empty vocabulary.
    pub fn sample_negative<R: Rng>(&self, rng: &mut R) -> u32 {
        assert!(
            !self.sampling_table.is_empty(),
            "sampling table not built or vocabulary empty"
        );
        let idx = rng.gen_range(0..self.sampling_table.len());
        self.sampling_table[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interning_and_counts() {
        let mut v = Vocab::default();
        let a = v.add("x=1");
        let b = v.add("y=2");
        let a2 = v.add("x=1");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.count(a), 2);
        assert_eq!(v.count(b), 1);
        assert_eq!(v.id("x=1"), Some(a));
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.token(b), "y=2");
        assert!(!v.is_empty());
        assert_eq!(v.tokens().len(), 2);
    }

    #[test]
    fn negative_sampling_respects_frequencies() {
        let mut v = Vocab::default();
        // "common" appears 100 times, "rare" once.
        for _ in 0..100 {
            v.add("common");
        }
        let rare = v.add("rare");
        let common = v.id("common").unwrap();
        v.build_sampling_table();
        let mut rng = StdRng::seed_from_u64(7);
        let mut common_hits = 0;
        let draws = 2000;
        for _ in 0..draws {
            if v.sample_negative(&mut rng) == common {
                common_hits += 1;
            }
        }
        // With the 0.75 exponent, "common" should be drawn much more often
        // than "rare" but not with probability ~1.0 (100:1 becomes ~31.6:1).
        assert!(common_hits > draws / 2, "common drawn {common_hits} times");
        assert!(common_hits < draws, "rare token should still be drawn");
        let _ = rare;
    }

    #[test]
    #[should_panic(expected = "sampling table")]
    fn sampling_without_table_panics() {
        let v = Vocab::default();
        let mut rng = StdRng::seed_from_u64(1);
        v.sample_negative(&mut rng);
    }
}
