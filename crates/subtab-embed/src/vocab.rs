//! Token vocabulary and negative-sampling tables.
//!
//! Two samplers over the same unigram^0.75 distribution are kept side by
//! side:
//!
//! * the legacy *cumulative table* ([`Vocab::sample_negative`]), a 2^16-entry
//!   inverse-CDF lookup whose draw sequence the bit-exact reference trainer
//!   depends on, and
//! * a Walker/Vose *alias table* ([`AliasTable`]), built in O(vocab) memory
//!   with O(1) draws from a single `u64`, used by the fast sharded trainer.

use rand::{Rng, RngCore};
use std::collections::HashMap;

/// A Walker/Vose alias table: O(1) sampling from an arbitrary discrete
/// distribution using one uniform `u64` per draw (one table probe plus at
/// most one redirect), with O(n) construction and O(n) memory — unlike the
/// inverse-CDF table, whose memory is fixed at 2^16 entries regardless of
/// vocabulary size and whose accuracy degrades for vocabularies that
/// approach it.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    /// Acceptance threshold of each column, scaled to 2^32 so the draw
    /// compares integers (no int→float conversion on the sampling path).
    threshold: Vec<u32>,
    /// Redirect target taken when the fractional draw exceeds `threshold`.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (need not be normalised).
    /// Returns an empty table when all weights are zero or `weights` is
    /// empty.
    pub fn from_weights(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum();
        if weights.is_empty() || total <= 0.0 {
            return AliasTable::default();
        }
        let n = weights.len();
        // Scale each weight so the average column height is exactly 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut threshold = vec![0u32; n];
        let mut alias = vec![0u32; n];
        let to_bits = |p: f64| (p.clamp(0.0, 1.0) * 4_294_967_295.0) as u32;
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            threshold[s as usize] = to_bits(scaled[s as usize]);
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are full columns up to rounding error.
        for &i in small.iter().chain(large.iter()) {
            threshold[i as usize] = u32::MAX;
            alias[i as usize] = i;
        }
        AliasTable { threshold, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.threshold.len()
    }

    /// Whether the table is empty (no outcomes with positive weight).
    pub fn is_empty(&self) -> bool {
        self.threshold.is_empty()
    }

    /// Draws one outcome index. A single `u64` supplies both the column
    /// (high 32 bits, mapped by multiply-shift — no modulo bias worth
    /// caring about at vocabulary sizes) and the acceptance fraction
    /// (low 32 bits). The accept-or-redirect choice is a branchless select:
    /// its outcome is a coin flip the branch predictor cannot learn, and a
    /// mispredict would cost more than unconditionally loading both
    /// candidates.
    ///
    /// # Panics
    /// Panics if the table is empty.
    #[inline]
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> u32 {
        self.sample_from_u64(rng.next_u64())
    }

    /// The draw itself, from caller-supplied uniform bits — lets hot loops
    /// use counter-based bit streams whose draws have no serial dependency
    /// on one another.
    ///
    /// # Panics
    /// Panics if the table is empty.
    #[inline]
    pub fn sample_from_u64(&self, r: u64) -> u32 {
        assert!(!self.threshold.is_empty(), "alias table is empty");
        let col = (((r >> 32) * self.threshold.len() as u64) >> 32) as usize;
        let frac = r as u32;
        let direct = col as u32;
        let redirect = self.alias[col];
        // Integer threshold compare plus an arithmetic select: no float
        // conversion, no unpredictable branch on the sampling path.
        let take_direct = frac < self.threshold[col];
        (take_direct as u32).wrapping_mul(direct) + (1 - take_direct as u32).wrapping_mul(redirect)
    }
}

/// A vocabulary of tokens with occurrence counts and pre-computed
/// negative-sampling tables using the Word2Vec unigram^0.75 distribution.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, u32>,
    counts: Vec<u64>,
    sampling_table: Vec<u32>,
    alias: AliasTable,
}

impl Vocab {
    /// Size of the negative-sampling table (Word2Vec uses 10^8; our
    /// vocabularies are tiny, so a much smaller table gives the same
    /// distribution).
    const SAMPLING_TABLE_SIZE: usize = 1 << 16;

    /// Builds a vocabulary from pre-counted tokens, preserving the given id
    /// order and counts — the constructor the streaming corpus builder uses
    /// after it has histogrammed the code planes (where [`Vocab::add`] would
    /// reset every count to one insertion at a time). The caller must still
    /// run [`Vocab::build_sampling_table`] before sampling.
    ///
    /// # Panics
    /// Panics if `tokens` and `counts` differ in length or `tokens` contains
    /// a duplicate.
    pub fn from_tokens_and_counts(tokens: Vec<String>, counts: Vec<u64>) -> Self {
        assert_eq!(tokens.len(), counts.len(), "tokens/counts length mismatch");
        let mut index = HashMap::with_capacity(tokens.len());
        for (id, token) in tokens.iter().enumerate() {
            let prev = index.insert(token.clone(), id as u32);
            assert!(prev.is_none(), "duplicate token {token:?}");
        }
        Vocab {
            tokens,
            index,
            counts,
            sampling_table: Vec::new(),
            alias: AliasTable::default(),
        }
    }

    /// Interns a token, returning its id and incrementing its count.
    pub fn add(&mut self, token: &str) -> u32 {
        match self.index.get(token) {
            Some(&id) => {
                self.counts[id as usize] += 1;
                id
            }
            None => {
                let id = self.tokens.len() as u32;
                self.tokens.push(token.to_string());
                self.index.insert(token.to_string(), id);
                self.counts.push(1);
                id
            }
        }
    }

    /// Records one more occurrence of an already-interned token — the fast
    /// path corpus building takes when it has already resolved a (column,
    /// bin) cell to its id and only the count needs to move.
    pub fn record_occurrence(&mut self, id: u32) {
        self.counts[id as usize] += 1;
    }

    /// Id of a token, if present.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Token text for an id.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Occurrence count of a token id.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Builds both negative-sampling tables (cumulative + alias). Must be
    /// called after all tokens have been added and before
    /// [`Vocab::sample_negative`] / [`Vocab::alias_table`].
    pub fn build_sampling_table(&mut self) {
        self.sampling_table.clear();
        self.alias = AliasTable::default();
        if self.tokens.is_empty() {
            return;
        }
        let weights: Vec<f64> = self.counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        self.alias = AliasTable::from_weights(&weights);
        let total: f64 = weights.iter().sum();
        self.sampling_table.reserve(Self::SAMPLING_TABLE_SIZE);
        let mut cumulative = 0.0;
        let mut id = 0usize;
        for i in 0..Self::SAMPLING_TABLE_SIZE {
            let target = (i as f64 + 0.5) / Self::SAMPLING_TABLE_SIZE as f64;
            while id + 1 < weights.len() && cumulative + weights[id] / total < target {
                cumulative += weights[id] / total;
                id += 1;
            }
            self.sampling_table.push(id as u32);
        }
    }

    /// Draws a token id from the unigram^0.75 distribution.
    ///
    /// Panics if [`Vocab::build_sampling_table`] has not been called on a
    /// non-empty vocabulary.
    pub fn sample_negative<R: Rng>(&self, rng: &mut R) -> u32 {
        assert!(
            !self.sampling_table.is_empty(),
            "sampling table not built or vocabulary empty"
        );
        let idx = rng.gen_range(0..self.sampling_table.len());
        self.sampling_table[idx]
    }

    /// The alias table over the unigram^0.75 distribution, used by the fast
    /// sharded trainer. Empty until [`Vocab::build_sampling_table`] runs on a
    /// non-empty vocabulary.
    pub fn alias_table(&self) -> &AliasTable {
        &self.alias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interning_and_counts() {
        let mut v = Vocab::default();
        let a = v.add("x=1");
        let b = v.add("y=2");
        let a2 = v.add("x=1");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.count(a), 2);
        assert_eq!(v.count(b), 1);
        assert_eq!(v.id("x=1"), Some(a));
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.token(b), "y=2");
        assert!(!v.is_empty());
        assert_eq!(v.tokens().len(), 2);
    }

    #[test]
    fn negative_sampling_respects_frequencies() {
        let mut v = Vocab::default();
        // "common" appears 100 times, "rare" once.
        for _ in 0..100 {
            v.add("common");
        }
        let rare = v.add("rare");
        let common = v.id("common").unwrap();
        v.build_sampling_table();
        let mut rng = StdRng::seed_from_u64(7);
        let mut common_hits = 0;
        let draws = 2000;
        for _ in 0..draws {
            if v.sample_negative(&mut rng) == common {
                common_hits += 1;
            }
        }
        // With the 0.75 exponent, "common" should be drawn much more often
        // than "rare" but not with probability ~1.0 (100:1 becomes ~31.6:1).
        assert!(common_hits > draws / 2, "common drawn {common_hits} times");
        assert!(common_hits < draws, "rare token should still be drawn");
        let _ = rare;
    }

    #[test]
    #[should_panic(expected = "sampling table")]
    fn sampling_without_table_panics() {
        let v = Vocab::default();
        let mut rng = StdRng::seed_from_u64(1);
        v.sample_negative(&mut rng);
    }

    #[test]
    fn alias_table_handles_degenerate_weights() {
        assert!(AliasTable::from_weights(&[]).is_empty());
        assert!(AliasTable::from_weights(&[0.0, 0.0]).is_empty());
        let single = AliasTable::from_weights(&[3.0]);
        assert_eq!(single.len(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(single.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "alias table is empty")]
    fn sampling_empty_alias_table_panics() {
        let t = AliasTable::default();
        let mut rng = StdRng::seed_from_u64(1);
        t.sample(&mut rng);
    }

    /// Chi-squared-style goodness-of-fit: alias-method draws must match the
    /// unigram^0.75 distribution the cumulative table encodes.
    #[test]
    fn alias_sampling_matches_unigram_075_distribution() {
        let mut v = Vocab::default();
        // Skewed counts: 1, 4, 16, 64, 256 occurrences over five tokens.
        let mut counts = Vec::new();
        for (t, &c) in ["a", "b", "c", "d", "e"]
            .iter()
            .zip(&[1u64, 4, 16, 64, 256])
        {
            for _ in 0..c {
                v.add(t);
            }
            counts.push(c);
        }
        v.build_sampling_table();
        let expected: Vec<f64> = {
            let w: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
            let total: f64 = w.iter().sum();
            w.iter().map(|x| x / total).collect()
        };

        let draws = 200_000usize;
        let mut rng = StdRng::seed_from_u64(99);
        let mut observed = vec![0u64; expected.len()];
        for _ in 0..draws {
            observed[v.alias_table().sample(&mut rng) as usize] += 1;
        }
        // Pearson chi-squared statistic against the expected distribution.
        let chi2: f64 = expected
            .iter()
            .zip(&observed)
            .map(|(&p, &o)| {
                let e = p * draws as f64;
                (o as f64 - e) * (o as f64 - e) / e
            })
            .sum();
        // 4 degrees of freedom; the 99.9th percentile of chi2(4) is 18.47.
        // A correct sampler fails this with probability 0.001 — and the seed
        // is fixed, so the test is deterministic.
        assert!(
            chi2 < 18.47,
            "chi-squared {chi2:.2} too large; observed {observed:?}"
        );
    }
}
