//! The trained cell-embedding model `M : (column, bin) → R^γ`.
//!
//! Storage is one flat row-major `tokens × dim` matrix plus a string index
//! kept only for the *cold* API (`vector`, `cosine`, `cell_vector`). The hot
//! query-time path never touches a string: a [`TokenPlane`] maps every cell
//! of a binned table to its embedding-row id once, after which
//! [`CellEmbedding::row_vector`] / [`CellEmbedding::column_vector`] are pure
//! integer-indexed gathers over the flat matrix.
//!
//! The matrix itself can be re-encoded post-training into half floats or
//! scaled signed bytes ([`Quantization`]) — the gathers then decode rows on
//! the fly through the runtime-dispatched `subtab-kernels` dequantizers,
//! halving or quartering the resident footprint of the largest preprocess
//! artefact.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use subtab_binning::BinnedTable;
use subtab_kernels::dequant::{f16_to_f32, f32_to_f16};

/// Sentinel id for a cell whose (column, bin) token was never embedded
/// (possible only for bins absent from the training corpus).
pub const NO_TOKEN: u32 = u32::MAX;

/// Below this many cell gathers a scoped-thread fan-out costs more in thread
/// setup than it saves; the sequential path is used regardless of `threads`.
const PARALLEL_MIN_CELLS: usize = 4096;

/// Post-training storage format of the embedding matrix.
///
/// Quantization trades per-weight precision for a 2× ([`Quantization::F16`])
/// or ~4× ([`Quantization::I8`]) smaller resident matrix — the remaining
/// memory ceiling of preprocess at the million-row tier. The hot gathers
/// ([`CellEmbedding::row_vector_into`] and friends) decode rows on the fly
/// through the runtime-dispatched `subtab-kernels` dequantizers; the
/// borrow-returning cold APIs ([`CellEmbedding::matrix`],
/// [`CellEmbedding::vector_by_id`], [`CellEmbedding::vector`]) have no f32
/// row to lend out of quantized storage and panic — use
/// [`CellEmbedding::vector_owned`] there instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantization {
    /// Keep the full-precision f32 matrix (default; output byte-identical
    /// to the pre-quantization code).
    #[default]
    None,
    /// IEEE binary16 halves: exact decode, at most 2^-11 relative rounding
    /// per weight on encode.
    F16,
    /// Signed bytes with one f32 scale per row (`max_abs / 127`): each
    /// weight is within ~0.4% of the row's largest magnitude.
    I8,
}

/// The trained matrix in one of the [`Quantization`] encodings.
#[derive(Debug, Clone)]
enum Storage {
    /// Full-precision row-major f32 matrix (the training output).
    F32(Vec<f32>),
    /// IEEE binary16 halves in the same row-major layout.
    F16(Vec<u16>),
    /// Signed bytes plus one decode scale per matrix row.
    I8 {
        /// Row-major `tokens × dim` byte codes.
        codes: Vec<i8>,
        /// Per-row scale: `weight = code * scale`.
        scales: Vec<f32>,
    },
}

/// A trained embedding: a dense vector for every (column, bin) token that
/// occurred in the training corpus.
#[derive(Debug, Clone)]
pub struct CellEmbedding {
    dim: usize,
    tokens: Vec<Arc<str>>,
    /// Row-major `tokens.len() × dim` vector matrix, possibly quantized.
    storage: Storage,
    /// Cold string → row-id lookup. The keys share the `Arc<str>` backing of
    /// `tokens`, so each token's character data is stored exactly once.
    index: HashMap<Arc<str>, usize>,
}

impl CellEmbedding {
    /// Assembles a model from parallel token / vector lists.
    pub fn new(dim: usize, tokens: Vec<String>, vectors: Vec<Vec<f32>>) -> Self {
        assert_eq!(tokens.len(), vectors.len());
        let mut flat = Vec::with_capacity(tokens.len() * dim);
        for v in &vectors {
            assert_eq!(v.len(), dim, "vector dimensionality mismatch");
            flat.extend_from_slice(v);
        }
        Self::from_flat(dim, tokens, flat)
    }

    /// Assembles a model from a flat row-major `tokens.len() × dim` matrix,
    /// as produced by the sharded trainer. This is the cheap constructor: the
    /// matrix is stored as-is.
    pub fn from_flat(dim: usize, tokens: Vec<String>, flat: Vec<f32>) -> Self {
        assert_eq!(tokens.len() * dim, flat.len());
        let tokens: Vec<Arc<str>> = tokens.into_iter().map(Arc::from).collect();
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (Arc::clone(t), i))
            .collect();
        CellEmbedding {
            dim,
            tokens,
            storage: Storage::F32(flat),
            index,
        }
    }

    /// Re-encodes the matrix into the requested storage format, consuming
    /// the model. `Quantization::None` is the identity.
    ///
    /// # Panics
    /// Panics if the model is already quantized (quantization is a one-way,
    /// post-training step).
    pub fn quantized(mut self, quantization: Quantization) -> Self {
        if quantization == Quantization::None {
            return self;
        }
        let flat = match std::mem::replace(&mut self.storage, Storage::F32(Vec::new())) {
            Storage::F32(flat) => flat,
            other => {
                panic!("CellEmbedding::quantized: storage is already quantized ({other:?})")
            }
        };
        self.storage = match quantization {
            Quantization::None => unreachable!(),
            Quantization::F16 => Storage::F16(flat.iter().map(|&x| f32_to_f16(x)).collect()),
            Quantization::I8 => {
                let mut codes = Vec::with_capacity(flat.len());
                let mut scales = Vec::with_capacity(self.tokens.len());
                if self.dim == 0 {
                    scales.resize(self.tokens.len(), 0.0);
                } else {
                    for row in flat.chunks_exact(self.dim) {
                        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                        let scale = max_abs / 127.0;
                        scales.push(scale);
                        if scale == 0.0 {
                            codes.extend(std::iter::repeat_n(0i8, self.dim));
                        } else {
                            let inv = 127.0 / max_abs;
                            codes.extend(
                                row.iter()
                                    .map(|&x| (x * inv).round().clamp(-127.0, 127.0) as i8),
                            );
                        }
                    }
                }
                Storage::I8 { codes, scales }
            }
        };
        self
    }

    /// The storage format the matrix currently uses.
    pub fn quantization(&self) -> Quantization {
        match &self.storage {
            Storage::F32(_) => Quantization::None,
            Storage::F16(_) => Quantization::F16,
            Storage::I8 { .. } => Quantization::I8,
        }
    }

    /// The f32 matrix, or a panic naming `what` when storage is quantized.
    fn dense(&self, what: &str) -> &[f32] {
        match &self.storage {
            Storage::F32(flat) => flat,
            _ => panic!(
                "CellEmbedding::{what}: matrix is quantized ({:?}); use vector_owned or the \
                 *_into gathers, which decode on the fly",
                self.quantization()
            ),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// All embedded tokens, in embedding-row order.
    pub fn tokens(&self) -> &[Arc<str>] {
        &self.tokens
    }

    /// The flat row-major `len() × dim` vector matrix.
    ///
    /// # Panics
    /// Panics on quantized storage (no f32 matrix exists to borrow).
    pub fn matrix(&self) -> &[f32] {
        self.dense("matrix")
    }

    /// The embedding-row id of a token, if the token was seen during
    /// training (cold path: string hash + lookup).
    pub fn token_id(&self, token: &str) -> Option<u32> {
        self.index.get(token).map(|&i| i as u32)
    }

    /// The vector stored at embedding row `id`.
    ///
    /// Panics if `id` is [`NO_TOKEN`] or out of range (gather loops must
    /// skip sentinel cells before indexing), or on quantized storage — use
    /// [`CellEmbedding::vector_owned`] there.
    #[inline]
    pub fn vector_by_id(&self, id: u32) -> &[f32] {
        let start = id as usize * self.dim;
        &self.dense("vector_by_id")[start..start + self.dim]
    }

    /// The vector at embedding row `id`, decoded into an owned buffer — the
    /// cold-path accessor that works for every storage format.
    ///
    /// Panics if `id` is [`NO_TOKEN`] or out of range.
    pub fn vector_owned(&self, id: u32) -> Vec<f32> {
        let start = id as usize * self.dim;
        match &self.storage {
            Storage::F32(flat) => flat[start..start + self.dim].to_vec(),
            Storage::F16(halves) => halves[start..start + self.dim]
                .iter()
                .map(|&h| f16_to_f32(h))
                .collect(),
            Storage::I8 { codes, scales } => {
                let scale = scales[id as usize];
                codes[start..start + self.dim]
                    .iter()
                    .map(|&c| c as f32 * scale)
                    .collect()
            }
        }
    }

    /// The vector of a token, if the token was seen during training (cold
    /// string API).
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        self.token_id(token).map(|id| self.vector_by_id(id))
    }

    /// The vector of the cell at (`row`, `col`) of a binned table (cold
    /// string API — formats and hashes a token per call; the hot path goes
    /// through [`TokenPlane`] ids instead).
    pub fn cell_vector(&self, binned: &BinnedTable, row: usize, col: usize) -> Option<&[f32]> {
        self.vector(&binned.cell_token(row, col))
    }

    /// Cosine similarity between two tokens' vectors.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f32> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        Some(cosine(va, vb))
    }

    /// Precomputes the token-id plane of a binned table: the dense
    /// `num_rows × num_cols` matrix of embedding-row ids every query-time
    /// gather indexes into. Built once per table at preprocess time.
    pub fn token_plane(&self, binned: &BinnedTable) -> TokenPlane {
        TokenPlane::new(self, binned)
    }

    /// The tuple-vector of a row: the component-wise average of the row's
    /// cell vectors over the given columns (lines 8–10 of Algorithm 2), as
    /// an integer-indexed gather over the flat matrix. Sentinel (unembedded)
    /// cells are skipped; if no cell has a vector, a zero vector is
    /// returned.
    pub fn row_vector(&self, plane: &TokenPlane, row: usize, cols: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        self.row_vector_into(plane, row, cols, &mut out);
        out
    }

    /// [`CellEmbedding::row_vector`] writing into a caller-provided slice
    /// (no allocation on the hot path).
    pub fn row_vector_into(&self, plane: &TokenPlane, row: usize, cols: &[usize], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        out.fill(0.0);
        let ids = plane.row_ids(row);
        let n = self.accumulate(out, cols.iter().map(|&c| ids[c]));
        if n > 0 {
            let inv = 1.0 / n as f32;
            out.iter_mut().for_each(|a| *a *= inv);
        }
    }

    /// Adds the matrix row of every non-sentinel id into `acc`, decoding
    /// quantized storage on the fly through the runtime-dispatched
    /// `subtab-kernels` dequantizers, and returns how many rows contributed.
    /// The f32 arm keeps the exact operation order of the pre-quantization
    /// gather, so dense models stay bit-identical.
    fn accumulate(&self, acc: &mut [f32], ids: impl Iterator<Item = u32>) -> usize {
        let dim = self.dim;
        let mut n = 0usize;
        match &self.storage {
            Storage::F32(flat) => {
                for id in ids.filter(|&id| id != NO_TOKEN) {
                    let start = id as usize * dim;
                    for (a, x) in acc.iter_mut().zip(&flat[start..start + dim]) {
                        *a += x;
                    }
                    n += 1;
                }
            }
            Storage::F16(halves) => {
                for id in ids.filter(|&id| id != NO_TOKEN) {
                    let start = id as usize * dim;
                    subtab_kernels::add_assign_f16(acc, &halves[start..start + dim]);
                    n += 1;
                }
            }
            Storage::I8 { codes, scales } => {
                for id in ids.filter(|&id| id != NO_TOKEN) {
                    let start = id as usize * dim;
                    subtab_kernels::add_assign_i8(
                        acc,
                        &codes[start..start + dim],
                        scales[id as usize],
                    );
                    n += 1;
                }
            }
        }
        n
    }

    /// The column-vector of a column: the average of its cell vectors over
    /// the given rows (lines 13–15 of Algorithm 2), as an integer-indexed
    /// gather over the flat matrix.
    pub fn column_vector(&self, plane: &TokenPlane, col: usize, rows: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        self.column_vector_into(plane, col, rows, &mut out);
        out
    }

    /// [`CellEmbedding::column_vector`] writing into a caller-provided slice.
    pub fn column_vector_into(
        &self,
        plane: &TokenPlane,
        col: usize,
        rows: &[usize],
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), self.dim);
        out.fill(0.0);
        let n = self.accumulate(out, rows.iter().map(|&r| plane.id(r, col)));
        if n > 0 {
            let inv = 1.0 / n as f32;
            out.iter_mut().for_each(|a| *a *= inv);
        }
    }

    /// Row vectors of `rows` over `cols` as one flat row-major
    /// `rows.len() × dim` matrix, with the per-row gathers fanned out across
    /// `threads` scoped workers (`0` = all available cores). Each row's
    /// gather is independent, so the output is bit-identical at every thread
    /// count.
    pub fn row_vectors(
        &self,
        plane: &TokenPlane,
        rows: &[usize],
        cols: &[usize],
        threads: usize,
    ) -> Vec<f32> {
        self.gather_many(rows, cols.len(), threads, |row, out| {
            self.row_vector_into(plane, row, cols, out);
        })
    }

    /// Column vectors of `cols` over the candidate `rows` as one flat
    /// row-major `cols.len() × dim` matrix, with the per-column gathers
    /// fanned out across `threads` scoped workers (`0` = all available
    /// cores; bit-identical at every thread count).
    pub fn column_vectors(
        &self,
        plane: &TokenPlane,
        cols: &[usize],
        rows: &[usize],
        threads: usize,
    ) -> Vec<f32> {
        self.gather_many(cols, rows.len(), threads, |col, out| {
            self.column_vector_into(plane, col, rows, out);
        })
    }

    /// Shared fan-out: one `dim`-sized output chunk per item, items split
    /// into contiguous chunks over scoped workers. `cells_per_item` sizes the
    /// parallelism guard (total gathered cells must amortise thread setup).
    fn gather_many<F>(
        &self,
        items: &[usize],
        cells_per_item: usize,
        threads: usize,
        gather: F,
    ) -> Vec<f32>
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        if self.dim == 0 {
            return Vec::new();
        }
        let dim = self.dim;
        let mut out = vec![0.0f32; items.len() * dim];
        let threads = resolve_threads(threads);
        if threads <= 1 || items.len() < 2 || items.len() * cells_per_item < PARALLEL_MIN_CELLS {
            for (&item, chunk) in items.iter().zip(out.chunks_exact_mut(dim)) {
                gather(item, chunk);
            }
            return out;
        }
        let chunk_items = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (item_chunk, out_chunk) in items
                .chunks(chunk_items)
                .zip(out.chunks_mut(chunk_items * dim))
            {
                let gather = &gather;
                scope.spawn(move || {
                    for (&item, o) in item_chunk.iter().zip(out_chunk.chunks_exact_mut(dim)) {
                        gather(item, o);
                    }
                });
            }
        });
        out
    }

    /// The pre-refactor string-keyed row gather (a token is formatted and
    /// hashed per cell). Preserved as the reference implementation for the
    /// equivalence suite and the query benchmark comparator; production code
    /// uses [`CellEmbedding::row_vector`].
    pub fn row_vector_strkey(&self, binned: &BinnedTable, row: usize, cols: &[usize]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for &c in cols {
            if let Some(v) = self.cell_vector(binned, row, c) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            acc.iter_mut().for_each(|a| *a *= inv);
        }
        acc
    }

    /// The pre-refactor string-keyed column gather; see
    /// [`CellEmbedding::row_vector_strkey`].
    pub fn column_vector_strkey(
        &self,
        binned: &BinnedTable,
        col: usize,
        rows: &[usize],
    ) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for &r in rows {
            if let Some(v) = self.cell_vector(binned, r, col) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            acc.iter_mut().for_each(|a| *a *= inv);
        }
        acc
    }
}

/// Resolves a configured thread count (`0` = all available cores).
fn resolve_threads(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// The token-id plane of one binned table: a dense row-major
/// `num_rows × num_cols` matrix of embedding-row ids ([`NO_TOKEN`] for cells
/// whose bin never made it into the training corpus).
///
/// Built once at preprocess time — the per-(column, bin) token strings are
/// formatted and hashed exactly once here, after which every selection over
/// the table (whole-table or query-time) is string-free.
#[derive(Debug, Clone)]
pub struct TokenPlane {
    ids: Vec<u32>,
    num_rows: usize,
    num_cols: usize,
}

impl TokenPlane {
    /// Builds the plane for `binned` against `embedding`.
    pub fn new(embedding: &CellEmbedding, binned: &BinnedTable) -> Self {
        let num_rows = binned.num_rows();
        let num_cols = binned.num_columns();
        let mut ids = vec![NO_TOKEN; num_rows * num_cols];
        for col in 0..num_cols {
            // One string lookup per (column, bin) — the only place tokens
            // are ever formatted after training.
            let bin_to_id: Vec<u32> = (0..binned.num_bins(col))
                .map(|b| {
                    embedding
                        .token_id(&binned.token(col, b as subtab_binning::BinId))
                        .unwrap_or(NO_TOKEN)
                })
                .collect();
            for (row, &code) in binned.codes(col).iter().enumerate() {
                ids[row * num_cols + col] = bin_to_id[code as usize];
            }
        }
        TokenPlane {
            ids,
            num_rows,
            num_cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Embedding-row id of the cell at (`row`, `col`), or [`NO_TOKEN`].
    #[inline]
    pub fn id(&self, row: usize, col: usize) -> u32 {
        self.ids[row * self.num_cols + col]
    }

    /// The ids of one row, indexed by column.
    #[inline]
    pub fn row_ids(&self, row: usize) -> &[u32] {
        &self.ids[row * self.num_cols..(row + 1) * self.num_cols]
    }
}

/// Cosine similarity of two equal-length vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn toy_model() -> (CellEmbedding, BinnedTable) {
        let t = Table::builder()
            .column_i64("a", vec![Some(0), Some(1)])
            .column_str("b", vec![Some("x"), Some("y")])
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        // Hand-crafted vectors so the averages are easy to verify.
        let tokens = vec![
            bt.cell_token(0, 0),
            bt.cell_token(1, 0),
            bt.cell_token(0, 1),
            bt.cell_token(1, 1),
        ];
        let vectors = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
        ];
        (CellEmbedding::new(2, tokens, vectors), bt)
    }

    /// A model that deliberately leaves the cell at (1, 1) unembedded, so
    /// its plane id must be the sentinel.
    fn holey_model() -> (CellEmbedding, BinnedTable) {
        let t = Table::builder()
            .column_i64("a", vec![Some(0), Some(1)])
            .column_str("b", vec![Some("x"), Some("y")])
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        let tokens = vec![
            bt.cell_token(0, 0),
            bt.cell_token(1, 0),
            bt.cell_token(0, 1),
        ];
        let vectors = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![3.0, 1.0]];
        (CellEmbedding::new(2, tokens, vectors), bt)
    }

    #[test]
    fn lookup_and_dims() {
        let (m, bt) = toy_model();
        assert_eq!(m.dim(), 2);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert!(m.vector(&bt.cell_token(0, 0)).is_some());
        assert!(m.vector("nonexistent").is_none());
        assert!(m.cell_vector(&bt, 1, 1).is_some());
        assert_eq!(m.matrix().len(), 4 * 2);
    }

    #[test]
    fn token_ids_round_trip_through_the_flat_matrix() {
        let (m, bt) = toy_model();
        for (i, token) in m.tokens().iter().enumerate() {
            let id = m.token_id(token).unwrap();
            assert_eq!(id as usize, i);
            assert_eq!(m.vector_by_id(id), m.vector(token).unwrap());
        }
        assert!(m.token_id("nonexistent").is_none());
        let _ = bt;
    }

    #[test]
    fn plane_maps_every_cell_to_its_token_row() {
        let (m, bt) = toy_model();
        let plane = m.token_plane(&bt);
        assert_eq!(plane.num_rows(), 2);
        assert_eq!(plane.num_cols(), 2);
        for row in 0..2 {
            for col in 0..2 {
                let id = plane.id(row, col);
                assert_ne!(id, NO_TOKEN);
                assert_eq!(
                    m.vector_by_id(id),
                    m.cell_vector(&bt, row, col).unwrap(),
                    "cell ({row}, {col})"
                );
            }
            assert_eq!(plane.row_ids(row).len(), 2);
        }
    }

    #[test]
    fn unembedded_cells_get_the_sentinel() {
        let (m, bt) = holey_model();
        let plane = m.token_plane(&bt);
        assert_eq!(plane.id(1, 1), NO_TOKEN);
        assert_ne!(plane.id(0, 1), NO_TOKEN);
        // The gather skips the sentinel cell exactly like the string path
        // skips the missing token.
        let rv = m.row_vector(&plane, 1, &[0, 1]);
        assert_eq!(rv, m.row_vector_strkey(&bt, 1, &[0, 1]));
        assert_eq!(rv, vec![0.0, 1.0], "only the embedded cell contributes");
        let cv = m.column_vector(&plane, 1, &[0, 1]);
        assert_eq!(cv, m.column_vector_strkey(&bt, 1, &[0, 1]));
        assert_eq!(cv, vec![3.0, 1.0]);
    }

    #[test]
    fn row_vector_is_mean_of_cell_vectors() {
        let (m, bt) = toy_model();
        let plane = m.token_plane(&bt);
        let rv = m.row_vector(&plane, 0, &[0, 1]);
        assert_eq!(rv, vec![1.0, 0.0]);
        let rv1 = m.row_vector(&plane, 1, &[0, 1]);
        assert_eq!(rv1, vec![-0.5, 0.5]);
    }

    #[test]
    fn column_vector_is_mean_over_rows() {
        let (m, bt) = toy_model();
        let plane = m.token_plane(&bt);
        let cv = m.column_vector(&plane, 1, &[0, 1]);
        assert_eq!(cv, vec![0.0, 0.0]);
        let cv_a = m.column_vector(&plane, 0, &[0, 1]);
        assert_eq!(cv_a, vec![0.5, 0.5]);
    }

    #[test]
    fn missing_vectors_are_skipped_and_zero_when_all_missing() {
        let (m, bt) = toy_model();
        let plane = m.token_plane(&bt);
        let rv = m.row_vector(&plane, 0, &[]);
        assert_eq!(rv, vec![0.0, 0.0]);
        let cv = m.column_vector(&plane, 0, &[]);
        assert_eq!(cv, vec![0.0, 0.0]);
    }

    #[test]
    fn gathers_match_the_string_keyed_reference() {
        let (m, bt) = toy_model();
        let plane = m.token_plane(&bt);
        for row in 0..2 {
            assert_eq!(
                m.row_vector(&plane, row, &[0, 1]),
                m.row_vector_strkey(&bt, row, &[0, 1])
            );
        }
        for col in 0..2 {
            assert_eq!(
                m.column_vector(&plane, col, &[0, 1]),
                m.column_vector_strkey(&bt, col, &[0, 1])
            );
        }
    }

    #[test]
    fn batched_gathers_are_bit_identical_at_every_thread_count() {
        let (m, bt) = holey_model();
        let plane = m.token_plane(&bt);
        let rows = [0, 1, 0];
        let cols = [1, 0];
        let sequential = m.row_vectors(&plane, &rows, &cols, 1);
        assert_eq!(sequential.len(), rows.len() * m.dim());
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(
                &sequential[i * m.dim()..(i + 1) * m.dim()],
                m.row_vector(&plane, r, &cols).as_slice()
            );
        }
        let col_seq = m.column_vectors(&plane, &cols, &rows, 1);
        for (i, &c) in cols.iter().enumerate() {
            assert_eq!(
                &col_seq[i * m.dim()..(i + 1) * m.dim()],
                m.column_vector(&plane, c, &rows).as_slice()
            );
        }
        for threads in [0, 2, 4] {
            assert_eq!(sequential, m.row_vectors(&plane, &rows, &cols, threads));
            assert_eq!(col_seq, m.column_vectors(&plane, &cols, &rows, threads));
        }
    }

    #[test]
    fn quantized_gathers_track_the_dense_reference() {
        let (m, bt) = toy_model();
        let plane = m.token_plane(&bt);
        let dense_rv = m.row_vector(&plane, 1, &[0, 1]);
        let dense_cv = m.column_vector(&plane, 0, &[0, 1]);
        for q in [Quantization::F16, Quantization::I8] {
            let qm = m.clone().quantized(q);
            assert_eq!(qm.quantization(), q);
            assert_eq!(qm.len(), m.len());
            let tol = match q {
                Quantization::F16 => 1e-3,
                _ => 1e-2,
            };
            for (got, want) in qm.row_vector(&plane, 1, &[0, 1]).iter().zip(&dense_rv) {
                assert!((got - want).abs() <= tol, "{q:?}: {got} vs {want}");
            }
            for (got, want) in qm.column_vector(&plane, 0, &[0, 1]).iter().zip(&dense_cv) {
                assert!((got - want).abs() <= tol, "{q:?}: {got} vs {want}");
            }
            // The owned decoder agrees with the dense rows to the same tol.
            for id in 0..qm.len() as u32 {
                for (got, want) in qm.vector_owned(id).iter().zip(m.vector_by_id(id)) {
                    assert!((got - want).abs() <= tol, "{q:?} row {id}");
                }
            }
        }
        // None is the identity: storage stays dense and borrowable.
        let same = m.clone().quantized(Quantization::None);
        assert_eq!(same.quantization(), Quantization::None);
        assert_eq!(same.matrix(), m.matrix());
    }

    #[test]
    #[should_panic(expected = "quantized")]
    fn borrowing_the_matrix_of_a_quantized_model_panics() {
        let (m, _) = toy_model();
        let qm = m.quantized(Quantization::F16);
        let _ = qm.matrix();
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let (m, bt) = toy_model();
        let c = m
            .cosine(&bt.cell_token(0, 0), &bt.cell_token(0, 1))
            .unwrap();
        assert!((c - 1.0).abs() < 1e-6);
        assert!(m.cosine("missing", "also missing").is_none());
    }
}
