//! The trained cell-embedding model `M : (column, bin) → R^γ`.

use std::collections::HashMap;
use subtab_binning::BinnedTable;

/// A trained embedding: a dense vector for every (column, bin) token that
/// occurred in the training corpus.
#[derive(Debug, Clone)]
pub struct CellEmbedding {
    dim: usize,
    tokens: Vec<String>,
    vectors: Vec<Vec<f32>>,
    index: HashMap<String, usize>,
}

impl CellEmbedding {
    /// Assembles a model from parallel token / vector lists.
    pub fn new(dim: usize, tokens: Vec<String>, vectors: Vec<Vec<f32>>) -> Self {
        assert_eq!(tokens.len(), vectors.len());
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        CellEmbedding {
            dim,
            tokens,
            vectors,
            index,
        }
    }

    /// Assembles a model from a flat row-major `tokens.len() × dim` matrix,
    /// as produced by the sharded trainer.
    pub fn from_flat(dim: usize, tokens: Vec<String>, flat: Vec<f32>) -> Self {
        assert_eq!(tokens.len() * dim, flat.len());
        let vectors = if dim == 0 {
            vec![Vec::new(); tokens.len()]
        } else {
            flat.chunks(dim).map(<[f32]>::to_vec).collect()
        };
        Self::new(dim, tokens, vectors)
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// All embedded tokens.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// The vector of a token, if the token was seen during training.
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        self.index.get(token).map(|&i| self.vectors[i].as_slice())
    }

    /// The vector of the cell at (`row`, `col`) of a binned table.
    pub fn cell_vector(&self, binned: &BinnedTable, row: usize, col: usize) -> Option<&[f32]> {
        self.vector(&binned.cell_token(row, col))
    }

    /// Cosine similarity between two tokens' vectors.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f32> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        Some(cosine(va, vb))
    }

    /// The tuple-vector of a row: the component-wise average of the row's
    /// cell vectors over the given columns (lines 8–10 of Algorithm 2).
    /// Cells whose token was not embedded (possible only for bins absent from
    /// the training data) are skipped; if no cell has a vector, a zero vector
    /// is returned.
    pub fn row_vector(&self, binned: &BinnedTable, row: usize, cols: &[usize]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for &c in cols {
            if let Some(v) = self.cell_vector(binned, row, c) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            acc.iter_mut().for_each(|a| *a *= inv);
        }
        acc
    }

    /// The column-vector of a column: the average of its cell vectors over
    /// the given rows (lines 13–15 of Algorithm 2).
    pub fn column_vector(&self, binned: &BinnedTable, col: usize, rows: &[usize]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for &r in rows {
            if let Some(v) = self.cell_vector(binned, r, col) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            acc.iter_mut().for_each(|a| *a *= inv);
        }
        acc
    }
}

/// Cosine similarity of two equal-length vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn toy_model() -> (CellEmbedding, BinnedTable) {
        let t = Table::builder()
            .column_i64("a", vec![Some(0), Some(1)])
            .column_str("b", vec![Some("x"), Some("y")])
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        // Hand-crafted vectors so the averages are easy to verify.
        let tokens = vec![
            bt.cell_token(0, 0),
            bt.cell_token(1, 0),
            bt.cell_token(0, 1),
            bt.cell_token(1, 1),
        ];
        let vectors = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
        ];
        (CellEmbedding::new(2, tokens, vectors), bt)
    }

    #[test]
    fn lookup_and_dims() {
        let (m, bt) = toy_model();
        assert_eq!(m.dim(), 2);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert!(m.vector(&bt.cell_token(0, 0)).is_some());
        assert!(m.vector("nonexistent").is_none());
        assert!(m.cell_vector(&bt, 1, 1).is_some());
    }

    #[test]
    fn row_vector_is_mean_of_cell_vectors() {
        let (m, bt) = toy_model();
        let rv = m.row_vector(&bt, 0, &[0, 1]);
        assert_eq!(rv, vec![1.0, 0.0]);
        let rv1 = m.row_vector(&bt, 1, &[0, 1]);
        assert_eq!(rv1, vec![-0.5, 0.5]);
    }

    #[test]
    fn column_vector_is_mean_over_rows() {
        let (m, bt) = toy_model();
        let cv = m.column_vector(&bt, 1, &[0, 1]);
        assert_eq!(cv, vec![0.0, 0.0]);
        let cv_a = m.column_vector(&bt, 0, &[0, 1]);
        assert_eq!(cv_a, vec![0.5, 0.5]);
    }

    #[test]
    fn missing_vectors_are_skipped_and_zero_when_all_missing() {
        let (m, bt) = toy_model();
        let rv = m.row_vector(&bt, 0, &[]);
        assert_eq!(rv, vec![0.0, 0.0]);
        let cv = m.column_vector(&bt, 0, &[]);
        assert_eq!(cv, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let (m, bt) = toy_model();
        let c = m
            .cosine(&bt.cell_token(0, 0), &bt.cell_token(0, 1))
            .unwrap();
        assert!((c - 1.0).abs() < 1e-6);
        assert!(m.cosine("missing", "also missing").is_none());
    }
}
