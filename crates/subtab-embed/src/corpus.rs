//! Building the tabular-sentence corpus.
//!
//! The corpus consists of two kinds of sentences over the binned table
//! (Section 5.1):
//!
//! * **tuple-sentences** — one per row, containing the row's cell tokens,
//! * **column-sentences** — one per column, containing the column's cell
//!   tokens over all rows. Because whole-column sentences can be arbitrarily
//!   long (and the skip-gram window the paper uses is the full sentence),
//!   long column sentences are chunked into segments of bounded length; the
//!   co-occurrence statistics within a column are preserved because bin
//!   tokens repeat heavily.
//!
//! The corpus is capped at `max_sentences` sentences chosen uniformly at
//! random (the paper uses 100 000) to bound pre-processing time on large
//! tables.

use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use subtab_binning::BinnedTable;

/// A tokenised corpus: sentences of vocabulary ids plus the vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// Sentences as sequences of token ids.
    pub sentences: Vec<Vec<u32>>,
    /// The vocabulary (with its negative-sampling table already built).
    pub vocab: Vocab,
}

impl Corpus {
    /// Total number of tokens across all sentences.
    pub fn num_tokens(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }

    /// Number of sentences.
    pub fn num_sentences(&self) -> usize {
        self.sentences.len()
    }
}

/// Parameters controlling corpus construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusOptions {
    /// Maximum number of sentences kept (uniform random sample). The paper
    /// uses 100 000.
    pub max_sentences: usize,
    /// Maximum length of a column-sentence chunk.
    pub max_column_sentence_len: usize,
    /// Whether to include column sentences at all (ablated in the benches).
    pub include_column_sentences: bool,
    /// RNG seed for the sentence subsample.
    pub seed: u64,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            max_sentences: 100_000,
            max_column_sentence_len: 64,
            include_column_sentences: true,
            seed: 42,
        }
    }
}

/// Builds the tabular-sentence corpus from a binned table.
pub fn build_corpus(binned: &BinnedTable, options: &CorpusOptions) -> Corpus {
    let mut vocab = Vocab::default();
    let mut sentences: Vec<Vec<u32>> = Vec::new();

    // A cell's token is fully determined by its (column, bin), so the token
    // string is rendered and interned only on the first sight of each pair;
    // every later cell is a table lookup plus a count bump. Identical vocab
    // ids, order and counts to interning per cell — without the O(cells)
    // string allocations.
    let mut bin_ids: Vec<Vec<Option<u32>>> = (0..binned.num_columns())
        .map(|c| vec![None; binned.num_bins(c)])
        .collect();
    let mut intern = |vocab: &mut Vocab, r: usize, c: usize| -> u32 {
        let bin = binned.bin_id(r, c) as usize;
        match bin_ids[c][bin] {
            Some(id) => {
                vocab.record_occurrence(id);
                id
            }
            None => {
                let id = vocab.add(&binned.cell_token(r, c));
                bin_ids[c][bin] = Some(id);
                id
            }
        }
    };

    // Tuple-sentences: one per row.
    for r in 0..binned.num_rows() {
        let sentence: Vec<u32> = (0..binned.num_columns())
            .map(|c| intern(&mut vocab, r, c))
            .collect();
        if !sentence.is_empty() {
            sentences.push(sentence);
        }
    }

    // Column-sentences: one per column, chunked.
    if options.include_column_sentences {
        let chunk = options.max_column_sentence_len.max(2);
        for c in 0..binned.num_columns() {
            let mut sentence: Vec<u32> = Vec::with_capacity(chunk);
            for r in 0..binned.num_rows() {
                sentence.push(intern(&mut vocab, r, c));
                if sentence.len() >= chunk {
                    sentences.push(std::mem::take(&mut sentence));
                }
            }
            if sentence.len() > 1 {
                sentences.push(sentence);
            }
        }
    }

    // Uniform random cap.
    if sentences.len() > options.max_sentences && options.max_sentences > 0 {
        let mut rng = StdRng::seed_from_u64(options.seed);
        sentences.shuffle(&mut rng);
        sentences.truncate(options.max_sentences);
    }

    vocab.build_sampling_table();
    Corpus { sentences, vocab }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned(rows: usize) -> BinnedTable {
        let t = Table::builder()
            .column_i64("a", (0..rows).map(|i| Some((i % 3) as i64)).collect())
            .column_str(
                "b",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "x" } else { "y" }))
                    .collect(),
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    #[test]
    fn row_and_column_sentences_are_built() {
        let bt = binned(10);
        let corpus = build_corpus(&bt, &CorpusOptions::default());
        // 10 row sentences + 2 column sentences (10 < chunk size).
        assert_eq!(corpus.num_sentences(), 12);
        // Row sentences have one token per column.
        assert!(corpus.sentences[..10].iter().all(|s| s.len() == 2));
        // Vocabulary: 3 bins of `a` + 2 bins of `b` actually used.
        assert_eq!(corpus.vocab.len(), 5);
        assert!(corpus.num_tokens() > 0);
    }

    #[test]
    fn column_sentences_can_be_disabled() {
        let bt = binned(10);
        let options = CorpusOptions {
            include_column_sentences: false,
            ..Default::default()
        };
        let corpus = build_corpus(&bt, &options);
        assert_eq!(corpus.num_sentences(), 10);
    }

    #[test]
    fn long_columns_are_chunked() {
        let bt = binned(200);
        let options = CorpusOptions {
            max_column_sentence_len: 50,
            ..Default::default()
        };
        let corpus = build_corpus(&bt, &options);
        // 200 row sentences + 2 columns * 4 chunks of 50.
        assert_eq!(corpus.num_sentences(), 208);
        assert!(corpus.sentences.iter().all(|s| s.len() <= 50));
    }

    #[test]
    fn corpus_cap_is_respected_and_deterministic() {
        let bt = binned(100);
        let options = CorpusOptions {
            max_sentences: 30,
            seed: 7,
            ..Default::default()
        };
        let a = build_corpus(&bt, &options);
        let b = build_corpus(&bt, &options);
        assert_eq!(a.num_sentences(), 30);
        assert_eq!(a.sentences, b.sentences);
    }

    #[test]
    fn tokens_are_column_qualified() {
        let bt = binned(4);
        let corpus = build_corpus(&bt, &CorpusOptions::default());
        for token in corpus.vocab.tokens() {
            assert!(token.contains('='), "token {token:?} not column-qualified");
        }
    }

    #[test]
    fn empty_table_gives_empty_corpus() {
        let t = Table::builder()
            .column_i64("a", Vec::new())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        let corpus = build_corpus(&bt, &CorpusOptions::default());
        assert_eq!(corpus.num_sentences(), 0);
        assert!(corpus.vocab.is_empty());
    }
}
