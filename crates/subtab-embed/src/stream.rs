//! Streaming corpus construction: the `(center, context)` pair stream built
//! directly from the columnar code planes of a [`BinnedTable`].
//!
//! The materialized builder ([`crate::corpus::build_corpus`]) interns one
//! token id per *cell visit* and stores every sentence as its own `Vec<u32>`
//! before the trainer flattens them again into the pair buffer — at the
//! million-row tier that intermediate corpus is the second-largest
//! preprocess allocation after the pair buffer itself. The streaming builder
//! skips it:
//!
//! 1. one pass per column over its code plane histograms the bins and
//!    records each bin's first row, which is enough to reproduce the
//!    materialized vocabulary *exactly* (ids in first-occurrence row-major
//!    order, counts multiplied by two when column sentences are on);
//! 2. sentences become lightweight *descriptors* (`row r` / `column chunk`)
//!    that are shuffled and capped with the same seeded RNG as the
//!    materialized sentence list — the permutation depends only on the
//!    length, so the surviving sentences are identical;
//! 3. each surviving descriptor is decoded into one reused scratch buffer
//!    and its windowed pairs are emitted straight into the pair buffer, in
//!    the exact enumeration order of the materialized
//!    `build_corpus` + `flatten_pairs` pipeline.
//!
//! With pruning and subsampling off the emitted pair stream is
//! byte-identical to the materialized twin (the equivalence suite pins this
//! on every planted dataset). The two knobs then cut work where the
//! materialized path cannot:
//!
//! * **`min_count`** drops tokens whose corpus count (after the ×2 of
//!   column sentences) is below the threshold. Pruned occurrences vanish
//!   from sentences before windowing, pruned tokens never enter the
//!   vocabulary, and their cells resolve to `NO_TOKEN` in the
//!   [`crate::TokenPlane`] — which selection already skips.
//! * **`subsample_t`** applies Word2Vec frequency subsampling: an
//!   occurrence of a token with corpus frequency `f` survives with
//!   probability `min(1, sqrt(t/f) + t/f)`. The coin is a deterministic
//!   hash of (sentence kind, row, column) and the seed, so the stream is
//!   reproducible at any thread count.

use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use subtab_binning::{BinId, BinnedTable};

/// Sentinel in the per-column bin → token-id maps for bins that were pruned
/// (or never occur). Matches [`crate::NO_TOKEN`].
const PRUNED: u32 = u32::MAX;

/// Parameters of the streaming pair builder — the corpus-shape options of
/// [`crate::corpus::CorpusOptions`] plus the window (applied during
/// emission) and the two pruning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Maximum number of sentences kept (uniform random sample over the
    /// sentence descriptors; same permutation as the materialized builder).
    pub max_sentences: usize,
    /// Maximum length of a column-sentence chunk.
    pub max_column_sentence_len: usize,
    /// Whether column sentences are included.
    pub include_column_sentences: bool,
    /// RNG seed (sentence subsample and the subsampling hash).
    pub seed: u64,
    /// Skip-gram context window; `None` spans the whole sentence.
    pub window: Option<usize>,
    /// Minimum corpus occurrence count (counted like the materialized
    /// vocabulary: every cell visit, so ×2 with column sentences on) for a
    /// token to be kept. `0` and `1` keep everything.
    pub min_count: u64,
    /// Word2Vec subsampling threshold `t`; `0.0` disables subsampling.
    /// Typical values are 1e-3 .. 1e-5 — smaller drops more of the most
    /// frequent tokens' occurrences.
    pub subsample_t: f64,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            max_sentences: 100_000,
            max_column_sentence_len: 64,
            include_column_sentences: true,
            seed: 42,
            window: Some(8),
            min_count: 0,
            subsample_t: 0.0,
        }
    }
}

/// The output of [`build_pair_stream`]: the (possibly pruned) vocabulary
/// with its sampling tables built, plus the flat `(center, context)` pair
/// buffer ready for the SGNS trainer.
#[derive(Debug, Clone, Default)]
pub struct PairStream {
    /// The vocabulary over the kept tokens, counts preserved from the full
    /// histogram and negative-sampling tables already built.
    pub vocab: Vocab,
    /// The training pairs, in materialized enumeration order.
    pub pairs: Vec<[u32; 2]>,
}

impl PairStream {
    /// Number of training pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }
}

/// One capped sentence, described instead of stored: decoding happens into
/// a reused scratch buffer at emission time.
#[derive(Clone, Copy)]
enum Desc {
    /// The tuple-sentence of row `r` (one token per column).
    Row(usize),
    /// A column-sentence chunk: `len` consecutive rows of one column.
    Chunk {
        col: usize,
        start: usize,
        len: usize,
    },
}

/// splitmix64, used as the deterministic per-occurrence subsampling coin.
#[inline(always)]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pairs a sentence of length `len` contributes under `window` — the same
/// closed form as the trainer's exact pair count.
fn pairs_for_len(len: usize, window: Option<usize>) -> usize {
    if len == 0 {
        return 0;
    }
    match window {
        Some(w) => {
            if len <= w + 1 {
                len * (len - 1)
            } else {
                w * (2 * len - w - 1)
            }
        }
        None => len * (len - 1),
    }
}

/// Emits the windowed pairs of one sentence in the exact order of the
/// materialized `flatten_pairs` (centers left to right, contexts left to
/// right, center skipped).
fn emit_pairs(sentence: &[u32], window: Option<usize>, out: &mut Vec<[u32; 2]>) {
    let len = sentence.len();
    for (i, &center) in sentence.iter().enumerate() {
        let (lo, hi) = match window {
            Some(w) => (i.saturating_sub(w), (i + w + 1).min(len)),
            None => (0, len),
        };
        for (j, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
            if j != i {
                out.push([center, context]);
            }
        }
    }
}

/// Builds the training pair stream directly from the binned table's code
/// planes. See the module docs for the exact equivalence contract with the
/// materialized `build_corpus` + `flatten_pairs` pipeline.
pub fn build_pair_stream(binned: &BinnedTable, options: &StreamOptions) -> PairStream {
    let rows = binned.num_rows();
    let cols = binned.num_columns();
    let planes: Vec<&[BinId]> = (0..cols).map(|c| binned.codes(c)).collect();
    let count_factor: u64 = if options.include_column_sentences {
        2
    } else {
        1
    };

    // Pass 1: per-column bin histogram + first row of each bin, straight
    // off the code planes (no strings, no per-cell hashing).
    let mut hists: Vec<Vec<u64>> = Vec::with_capacity(cols);
    let mut firsts: Vec<Vec<usize>> = Vec::with_capacity(cols);
    for (c, plane) in planes.iter().enumerate() {
        let num_bins = binned.num_bins(c);
        let mut hist = vec![0u64; num_bins];
        let mut first = vec![usize::MAX; num_bins];
        for (r, &code) in plane.iter().enumerate() {
            let b = code as usize;
            if hist[b] == 0 {
                first[b] = r;
            }
            hist[b] += 1;
        }
        hists.push(hist);
        firsts.push(first);
    }

    // The materialized vocabulary interns on first sight during the
    // row-major row pass, so its id order is exactly (first_row, col)
    // ascending over the used (col, bin) pairs.
    let mut used: Vec<(usize, usize, usize)> = Vec::new(); // (first_row, col, bin)
    for c in 0..cols {
        for (b, &h) in hists[c].iter().enumerate() {
            if h > 0 {
                used.push((firsts[c][b], c, b));
            }
        }
    }
    used.sort_unstable();

    // Prune while interning: kept tokens keep their relative order and full
    // counts; pruned bins map to the sentinel and never reach the vocab.
    let mut tokens: Vec<String> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut bin_to_id: Vec<Vec<u32>> = hists.iter().map(|h| vec![PRUNED; h.len()]).collect();
    for &(_, c, b) in &used {
        let count = hists[c][b] * count_factor;
        if count >= options.min_count {
            bin_to_id[c][b] = tokens.len() as u32;
            tokens.push(binned.token(c, b as BinId));
            counts.push(count);
        }
    }
    let pruned_any = tokens.len() < used.len();

    // Per-id subsampling keep thresholds, as integers against the top 53
    // bits of the occurrence hash: keep iff (hash >> 11) < threshold.
    const HASH_ONE: f64 = 9_007_199_254_740_992.0; // 2^53
    let thresholds: Option<Vec<u64>> = if options.subsample_t > 0.0 && !counts.is_empty() {
        let total: u64 = counts.iter().sum();
        Some(
            counts
                .iter()
                .map(|&c| {
                    let f = c as f64 / total as f64;
                    let keep =
                        ((options.subsample_t / f).sqrt() + options.subsample_t / f).min(1.0);
                    (keep * HASH_ONE) as u64
                })
                .collect(),
        )
    } else {
        None
    };

    let mut vocab = Vocab::from_tokens_and_counts(tokens, counts);
    vocab.build_sampling_table();

    // Sentence descriptors in materialized order: every row sentence, then
    // each column's full chunks and (length > 1) tail.
    let chunk = options.max_column_sentence_len.max(2);
    let mut descs: Vec<Desc> = Vec::new();
    if cols > 0 {
        descs.extend((0..rows).map(Desc::Row));
    }
    if options.include_column_sentences {
        for c in 0..cols {
            let mut start = 0;
            while start + chunk <= rows {
                descs.push(Desc::Chunk {
                    col: c,
                    start,
                    len: chunk,
                });
                start += chunk;
            }
            let tail = rows - start;
            if tail > 1 {
                descs.push(Desc::Chunk {
                    col: c,
                    start,
                    len: tail,
                });
            }
        }
    }

    // Uniform random cap: `shuffle` draws depend only on the length, so the
    // descriptor permutation equals the materialized sentence permutation.
    if descs.len() > options.max_sentences && options.max_sentences > 0 {
        let mut rng = StdRng::seed_from_u64(options.seed);
        descs.shuffle(&mut rng);
        descs.truncate(options.max_sentences);
    }

    // Emission: decode each descriptor into the scratch sentence (dropping
    // pruned / subsampled occurrences) and window it. Without filtering the
    // reservation is the exact final size.
    let mut pairs: Vec<[u32; 2]> = Vec::new();
    if thresholds.is_none() && !pruned_any {
        pairs.reserve(
            descs
                .iter()
                .map(|d| {
                    let len = match *d {
                        Desc::Row(_) => cols,
                        Desc::Chunk { len, .. } => len,
                    };
                    pairs_for_len(len, options.window)
                })
                .sum(),
        );
    }
    let mut sentence: Vec<u32> = Vec::with_capacity(chunk.max(cols));
    let seed = options.seed;
    // The subsampling coin for the cell at (row, col): sentence kind 0 for
    // the row pass, 1 for the column pass, so the two visits of one cell
    // flip independent coins.
    let occurrence_hash = |kind: u64, r: usize, c: usize| -> u64 {
        let key = (r as u64 * cols.max(1) as u64 + c as u64) * 2 + kind;
        splitmix64(seed ^ splitmix64(key))
    };
    for d in &descs {
        sentence.clear();
        match *d {
            Desc::Row(r) => {
                for (c, plane) in planes.iter().enumerate() {
                    let id = bin_to_id[c][plane[r] as usize];
                    if id == PRUNED {
                        continue;
                    }
                    if let Some(th) = &thresholds {
                        if occurrence_hash(0, r, c) >> 11 >= th[id as usize] {
                            continue;
                        }
                    }
                    sentence.push(id);
                }
            }
            Desc::Chunk { col, start, len } => {
                let plane = planes[col];
                let map = &bin_to_id[col];
                for r in start..start + len {
                    let id = map[plane[r] as usize];
                    if id == PRUNED {
                        continue;
                    }
                    if let Some(th) = &thresholds {
                        if occurrence_hash(1, r, col) >> 11 >= th[id as usize] {
                            continue;
                        }
                    }
                    sentence.push(id);
                }
            }
        }
        emit_pairs(&sentence, options.window, &mut pairs);
    }

    PairStream { vocab, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, CorpusOptions};
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned(rows: usize) -> BinnedTable {
        let t = Table::builder()
            .column_i64("a", (0..rows).map(|i| Some((i % 5) as i64)).collect())
            .column_str(
                "b",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "x" } else { "y" }))
                    .collect(),
            )
            .column_f64("c", (0..rows).map(|i| Some(i as f64 * 0.25)).collect())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    /// The materialized twin's pair buffer for the same shape options.
    fn materialized_pairs(
        bt: &BinnedTable,
        options: &StreamOptions,
    ) -> (crate::corpus::Corpus, Vec<[u32; 2]>) {
        let corpus = build_corpus(
            bt,
            &CorpusOptions {
                max_sentences: options.max_sentences,
                max_column_sentence_len: options.max_column_sentence_len,
                include_column_sentences: options.include_column_sentences,
                seed: options.seed,
            },
        );
        let mut pairs = Vec::new();
        for s in &corpus.sentences {
            emit_pairs(s, options.window, &mut pairs);
        }
        (corpus, pairs)
    }

    #[test]
    fn stream_matches_materialized_with_knobs_off() {
        for rows in [0usize, 1, 7, 137] {
            for (window, chunk, cap) in [
                (Some(3), 16, 100_000),
                (None, 64, 100_000),
                (Some(8), 8, 40),
            ] {
                let bt = binned(rows);
                let options = StreamOptions {
                    window,
                    max_column_sentence_len: chunk,
                    max_sentences: cap,
                    ..Default::default()
                };
                let stream = build_pair_stream(&bt, &options);
                let (corpus, want_pairs) = materialized_pairs(&bt, &options);
                assert_eq!(
                    stream.vocab.tokens(),
                    corpus.vocab.tokens(),
                    "rows={rows} window={window:?} chunk={chunk} cap={cap}"
                );
                for id in 0..stream.vocab.len() as u32 {
                    assert_eq!(stream.vocab.count(id), corpus.vocab.count(id), "id {id}");
                }
                assert_eq!(stream.pairs, want_pairs, "rows={rows} window={window:?}");
                assert_eq!(stream.num_pairs(), want_pairs.len());
            }
        }
    }

    #[test]
    fn stream_matches_materialized_without_column_sentences() {
        let bt = binned(60);
        let options = StreamOptions {
            include_column_sentences: false,
            window: Some(2),
            ..Default::default()
        };
        let stream = build_pair_stream(&bt, &options);
        let (corpus, want_pairs) = materialized_pairs(&bt, &options);
        assert_eq!(stream.vocab.tokens(), corpus.vocab.tokens());
        for id in 0..stream.vocab.len() as u32 {
            assert_eq!(stream.vocab.count(id), corpus.vocab.count(id));
        }
        assert_eq!(stream.pairs, want_pairs);
    }

    #[test]
    fn min_count_prunes_rare_tokens_and_is_monotone() {
        // 97 rows: `a` has bins with different frequencies; a large
        // min_count must keep a subset of a small one's vocabulary.
        let bt = binned(97);
        let base = build_pair_stream(&bt, &StreamOptions::default());
        let mut prev_len = usize::MAX;
        for min_count in [0u64, 1, 10, 40, 10_000] {
            let s = build_pair_stream(
                &bt,
                &StreamOptions {
                    min_count,
                    ..Default::default()
                },
            );
            assert!(
                s.vocab.len() <= prev_len,
                "vocab grew at min_count={min_count}"
            );
            prev_len = s.vocab.len();
            // Every kept token exists in the unpruned vocabulary with the
            // same (full-histogram) count, at or above the threshold.
            for id in 0..s.vocab.len() as u32 {
                let token = s.vocab.token(id);
                let full_id = base.vocab.id(token).expect("kept token missing from base");
                assert_eq!(s.vocab.count(id), base.vocab.count(full_id));
                assert!(s.vocab.count(id) >= min_count);
            }
            // Pairs only ever reference kept ids.
            for &[a, b] in &s.pairs {
                assert!((a as usize) < s.vocab.len() && (b as usize) < s.vocab.len());
            }
        }
        // The largest threshold prunes everything here.
        let all_pruned = build_pair_stream(
            &bt,
            &StreamOptions {
                min_count: 10_000,
                ..Default::default()
            },
        );
        assert!(all_pruned.vocab.is_empty());
        assert!(all_pruned.pairs.is_empty());
    }

    #[test]
    fn subsampling_thins_frequent_tokens_deterministically() {
        let bt = binned(200);
        let dense = build_pair_stream(&bt, &StreamOptions::default());
        let thin_options = StreamOptions {
            subsample_t: 1e-3,
            ..Default::default()
        };
        let thin_a = build_pair_stream(&bt, &thin_options);
        let thin_b = build_pair_stream(&bt, &thin_options);
        assert_eq!(
            thin_a.pairs, thin_b.pairs,
            "subsampling must be deterministic"
        );
        assert_eq!(thin_a.vocab.tokens(), dense.vocab.tokens());
        assert!(
            thin_a.num_pairs() < dense.num_pairs(),
            "t=1e-3 should drop occurrences ({} vs {})",
            thin_a.num_pairs(),
            dense.num_pairs()
        );
        assert!(
            !thin_a.pairs.is_empty(),
            "moderate t must not empty the stream"
        );
        // A different seed flips different coins.
        let reseeded = build_pair_stream(
            &bt,
            &StreamOptions {
                seed: 43,
                subsample_t: 1e-3,
                ..Default::default()
            },
        );
        assert_ne!(reseeded.pairs, thin_a.pairs);
    }

    #[test]
    fn empty_table_gives_empty_stream() {
        let t = Table::builder()
            .column_i64("a", Vec::new())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        let stream = build_pair_stream(&bt, &StreamOptions::default());
        assert!(stream.vocab.is_empty());
        assert!(stream.pairs.is_empty());
    }
}
