//! # subtab-embed
//!
//! Table embedding for the SubTab framework (Section 5.1, "Pre-Processing").
//!
//! The paper turns the binned table into a corpus of *tabular sentences* —
//! one sentence per row (its cell values) and one per column (the values of
//! that column) — and trains a Word2Vec model over the corpus. The learned
//! cell vectors capture co-occurrence of bin values within rows and columns,
//! which is the same signal frequent itemsets and association rules are built
//! from; this is why centroid selection over these vectors yields sub-tables
//! with good cell coverage without ever mining rules.
//!
//! This crate reimplements that pipeline from scratch:
//!
//! * [`stream`] — the default preprocess path: the `(center, context)` pair
//!   stream built directly from the columnar code planes (no materialized
//!   sentence corpus), with optional frequency pruning (`min_count`) and
//!   Word2Vec subsampling (`subsample_t`),
//! * [`corpus`] — the materialized sentence corpus, preserved as the pinned
//!   reference twin of the streaming builder (the paper caps it at 100 000
//!   sentences sampled uniformly at random),
//! * [`vocab`] — the token vocabulary with a unigram^0.75 negative-sampling
//!   table,
//! * [`sgns`] — a sharded skip-gram-with-negative-sampling trainer (the
//!   fast Word2Vec variant of Mikolov et al. used by gensim) that scales
//!   across cores Hogwild-style, with a bit-exact single-threaded reference
//!   path and a reproducible parallel mode,
//! * [`model`] — the resulting [`CellEmbedding`]: one flat row-major vector
//!   matrix over the (column, bin) tokens — storable as f32, f16 or scaled
//!   i8 ([`Quantization`]) — plus the [`TokenPlane`] of precomputed per-cell
//!   embedding-row ids that makes query-time row/column gathers string-free
//!   (the string index is kept only for the cold API).
//!
//! Everything is deterministic given the seed in [`EmbeddingConfig`] unless
//! `deterministic = false` is combined with `threads > 1` (lock-free
//! Hogwild updates race by design); see the mode table in [`sgns`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod corpus;
pub mod model;
pub mod sgns;
pub mod stream;
pub mod vocab;

pub use corpus::{build_corpus, Corpus};
pub use model::{CellEmbedding, Quantization, TokenPlane, NO_TOKEN};
pub use sgns::{train_embedding, train_embedding_materialized, EmbeddingConfig};
pub use stream::{build_pair_stream, PairStream, StreamOptions};
pub use vocab::{AliasTable, Vocab};
