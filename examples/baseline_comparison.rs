//! Comparing SubTab with the paper's baselines on one dataset and printing
//! the three quality metrics for each — a miniature version of Figure 8.
//!
//! ```bash
//! cargo run --release --example baseline_comparison
//! ```

use std::time::{Duration, Instant};
use subtab::baselines::{
    graph_embedding_select, greedy_select, mab_select, naive_clustering_select, random_select,
    GraphEmbedConfig, GreedyConfig, MabConfig, RandomConfig,
};
use subtab::datasets::{spotify, DatasetSize};
use subtab::metrics::Evaluator;
use subtab::rules::{MiningConfig, RuleMiner};
use subtab::{Binner, BinningConfig, SelectionParams, SubTab, SubTabConfig};

fn main() {
    let (k, l) = (10, 8);
    let dataset = spotify(DatasetSize::Tiny, 5);
    let table = dataset.table;
    println!(
        "SP stand-in: {} rows x {} columns; selecting {k} x {l} sub-tables\n",
        table.num_rows(),
        table.num_columns()
    );

    // Shared evaluation machinery: binning, rules, evaluator.
    let binner = Binner::fit(&table, &BinningConfig::default()).expect("binning");
    let binned = binner.apply(&table).expect("binning");
    let rules = RuleMiner::new(MiningConfig::default()).mine(&binned);
    let evaluator = Evaluator::new(binned.clone(), &rules, 0.5);
    println!("{} association rules mined\n", rules.len());
    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>12}",
        "method", "coverage", "diversity", "combined", "time"
    );

    let report = |name: &str, rows: &[usize], cols: &[usize], elapsed: Duration| {
        let s = evaluator.score(rows, cols);
        println!(
            "{:<12} {:>9.3} {:>10.3} {:>9.3} {:>11.2?}",
            name, s.cell_coverage, s.diversity, s.combined, elapsed
        );
    };

    // SubTab.
    let start = Instant::now();
    let subtab = SubTab::preprocess(table.clone(), SubTabConfig::default()).expect("preprocess");
    let view = subtab.select(&SelectionParams::new(k, l)).expect("select");
    let cols = view.column_indices(&table);
    report("SubTab", &view.row_indices, &cols, start.elapsed());

    // RAN (time-budgeted random search).
    let start = Instant::now();
    let ran = random_select(
        &evaluator,
        k,
        l,
        &[],
        &RandomConfig {
            time_budget: Duration::from_secs(2),
            max_iterations: 2_000,
            seed: 1,
        },
    );
    report("RAN", &ran.rows, &ran.cols, start.elapsed());

    // NC (naive clustering).
    let start = Instant::now();
    let nc = naive_clustering_select(&table, k, l, &[], 1);
    report("NC", &nc.rows, &nc.cols, start.elapsed());

    // MAB (UCB sampler).
    let start = Instant::now();
    let mab = mab_select(
        &evaluator,
        k,
        l,
        &[],
        &MabConfig {
            iterations: 300,
            ..Default::default()
        },
    );
    report("MAB", &mab.rows, &mab.cols, start.elapsed());

    // Semi-greedy (budgeted Algorithm 1).
    let start = Instant::now();
    let greedy = greedy_select(&evaluator, k, l, &[], &GreedyConfig::semi_greedy(10, 3));
    report("Greedy", &greedy.rows, &greedy.cols, start.elapsed());

    // EmbDI-style graph embedding.
    let start = Instant::now();
    let ge = graph_embedding_select(&binned, k, l, &[], &GraphEmbedConfig::default());
    report("EmbDI-like", &ge.rows, &ge.cols, start.elapsed());

    println!(
        "\n(The paper's Figure 8 reports the same comparison on FL, SP and CY at full scale.)"
    );
}
