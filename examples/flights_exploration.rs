//! Target-column exploration on the flights dataset, mirroring Example 1.1 /
//! 1.2 of the paper: an analyst wants to predict flight cancellations, so the
//! `CANCELLED` column must appear in every display, and the sub-table should
//! surface the patterns that involve it (missing departure times, long flights
//! rarely cancelled, …).
//!
//! ```bash
//! cargo run --release --example flights_exploration
//! ```

use subtab::data::{Predicate, Query, Value};
use subtab::datasets::{flights, DatasetSize};
use subtab::metrics::Evaluator;
use subtab::rules::{MiningConfig, RuleMiner};
use subtab::{SelectionParams, SubTab, SubTabConfig};

fn main() {
    let dataset = flights(DatasetSize::Small, 7);
    println!(
        "FL stand-in: {} rows x {} columns, planted patterns: {}",
        dataset.table.num_rows(),
        dataset.table.num_columns(),
        dataset
            .archetypes
            .iter()
            .map(|a| a.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let subtab = SubTab::preprocess(dataset.table, SubTabConfig::default()).expect("preprocess");

    // Mine rules once so we can (a) highlight them and (b) score the display.
    let binned = subtab.preprocessed().binned();
    let rules = RuleMiner::new(MiningConfig::default()).mine(binned);
    println!(
        "Mined {} association rules (support >= 0.1, confidence >= 0.6, size >= 3)",
        rules.len()
    );

    // The target-focused 10×10 display of the whole table.
    let params = SelectionParams::new(10, 10).with_targets(&["CANCELLED"]);
    let view = subtab.select(&params).expect("selection");
    let evaluator = Evaluator::new(binned.clone(), &rules, 0.5);
    let cols = view.column_indices(subtab.table());
    let score = evaluator.score(&view.row_indices, &cols);
    println!(
        "\nFull-table display: cell coverage {:.3}, diversity {:.3}, combined {:.3}",
        score.cell_coverage, score.diversity, score.combined
    );
    let view = subtab.with_highlights(view, &rules);
    println!("{}", view.render_with_highlights());

    // Drill-down query: only cancelled flights.
    let q = Query::new().filter(Predicate::eq("CANCELLED", Value::Int(1)));
    let drill = subtab
        .select_for_query(&q, &SelectionParams::new(8, 8).with_targets(&["CANCELLED"]))
        .expect("query selection");
    println!("--- sub-table of `CANCELLED = 1` query result ---");
    println!("{}", drill.sub_table.render(8));

    // Another query: long flights only, projected to a handful of columns.
    let q = Query::new()
        .filter(Predicate::between("DISTANCE", 1500.0, 3000.0))
        .select(&["DISTANCE", "AIR_TIME", "DAY_PERIOD", "AIRLINE", "CANCELLED"]);
    let long_haul = subtab
        .select_for_query(&q, &SelectionParams::new(6, 5).with_targets(&["CANCELLED"]))
        .expect("query selection");
    println!("--- sub-table of the long-haul query result ---");
    println!("{}", long_haul.sub_table.render(6));
}
