//! Replaying an EDA session: for every query of a generated exploration
//! session over the cyber-security dataset, display the query, the size of
//! its result, and the informative sub-table SubTab produces for it — the
//! interactive loop of Figure 1 (red arrows) in the paper — with the
//! association rules mined once at load time highlighted per displayed row
//! (the coloured-pattern UI of Figures 1–3).
//!
//! The closing segment issues the same nested analyst question three ways —
//! SQL-ish text, the `QueryExpr` AST builder, and a commuted respelling —
//! and shows all three share one canonical selection key.
//!
//! ```bash
//! cargo run --release --example query_session
//! ```

use subtab::core::HighlightIndex;
use subtab::data::{Predicate, Query, QueryExpr, Value};
use subtab::datasets::{cyber, generate_sessions, DatasetSize, SessionConfig};
use subtab::rules::MiningConfig;
use subtab::{SelectionParams, SubTab, SubTabConfig};

fn main() {
    let dataset = cyber(DatasetSize::Small, 11);
    println!(
        "CY stand-in: {} rows x {} columns",
        dataset.table.num_rows(),
        dataset.table.num_columns()
    );

    let sessions = generate_sessions(
        &dataset,
        &SessionConfig {
            num_sessions: 2,
            min_queries: 4,
            max_queries: 5,
            seed: 3,
        },
    );

    let subtab =
        SubTab::preprocess(dataset.table.clone(), SubTabConfig::default()).expect("pre-processing");
    // Rules are mined once when the table is loaded (vertical bitmap
    // engine); every displayed sub-table below reuses them for highlights.
    let rules = subtab.mine_rules(&MiningConfig {
        min_rule_size: 2,
        ..Default::default()
    });
    println!("mined {} association rules at load time", rules.len());
    // One highlight index for the whole session; each displayed sub-table
    // below only probes it.
    let highlighter = HighlightIndex::build(&rules);
    let params = SelectionParams::new(8, 6);

    for (si, session) in sessions.iter().enumerate() {
        println!(
            "\n================ session {} (investigating pattern {:?}) ================",
            si + 1,
            dataset.archetypes[session.archetype].name
        );
        for (qi, query) in session.queries.iter().enumerate() {
            let result = query.execute(&dataset.table).expect("query executes");
            println!(
                "\n-- query {}: {}\n   result: {} rows x {} columns",
                qi + 1,
                query,
                result.num_rows(),
                result.num_columns()
            );
            match subtab.select_for_query(query, &params) {
                Ok(view) => {
                    let view = subtab.with_highlights_indexed(view, &highlighter);
                    let highlighted = view.highlights.iter().flatten().count();
                    println!(
                        "   SubTab display ({} rows, {} highlighted):",
                        view.sub_table.num_rows(),
                        highlighted
                    );
                    println!("{}", view.render_with_highlights());
                }
                Err(e) => println!("   (no sub-table: {e})"),
            }
        }
    }

    // The SQL-ish frontend: one nested analyst question, three spellings.
    println!("\n================ nested query, three spellings ================");
    let text = "flagged = 1 AND (protocol = 'udp' OR NOT protocol IN ('tcp', 'icmp'))";
    let parsed: Query = text.parse().expect("query text parses");
    let built = Query::expr(QueryExpr::and(vec![
        QueryExpr::leaf(Predicate::eq("flagged", Value::Int(1))),
        QueryExpr::or(vec![
            QueryExpr::leaf(Predicate::eq("protocol", Value::from("udp"))),
            QueryExpr::leaf(Predicate::in_set(
                "protocol",
                vec![Value::from("tcp"), Value::from("icmp")],
            ))
            .negated(),
        ]),
    ]));
    let commuted: Query =
        "(NOT (protocol = 'icmp' OR protocol = 'tcp') OR protocol = 'udp') AND flagged = 1.0"
            .parse()
            .expect("commuted spelling parses");
    println!("text:     {text}");
    println!("AST form: {built}");
    println!("commuted: {commuted}");
    assert_eq!(parsed.selection_key(), built.selection_key());
    assert_eq!(parsed.selection_key(), commuted.selection_key());
    println!("all three share one canonical selection key — one cache entry on the server");
    let view = subtab
        .select_for_query(&parsed, &params)
        .expect("nested query selects");
    println!(
        "SubTab display for the nested query ({} rows x {} columns):\n{}",
        view.sub_table.num_rows(),
        view.sub_table.num_columns(),
        view.sub_table
    );
}
