//! Quickstart: load a table, pre-process it once, and display an informative
//! 10×10 sub-table instead of Pandas-style "first and last rows".
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use subtab::datasets::{flights, DatasetSize};
use subtab::{MiningConfig, RuleMiner, SelectionParams, SubTab, SubTabConfig};

fn main() {
    // In a real workflow this would be `subtab::data::csv::read_csv_file(path)`.
    // The repository ships no Kaggle data, so we generate the synthetic
    // flights stand-in described in DESIGN.md instead.
    let dataset = flights(DatasetSize::Small, 42);
    let table = dataset.table;
    println!(
        "Loaded table: {} rows x {} columns ({}% of cells missing)",
        table.num_rows(),
        table.num_columns(),
        (table.null_fraction() * 100.0).round()
    );

    // The naive display the paper's introduction criticises: the first rows.
    println!("\n--- head(5): what a default display would show ---");
    println!("{}", table.head(5).render(5));

    // Pre-processing: normalise, bin, embed. Runs once per table.
    let start = std::time::Instant::now();
    let subtab = SubTab::preprocess(table, SubTabConfig::default()).expect("pre-processing");
    println!("Pre-processing took {:.2?}", start.elapsed());

    // Selection: a 10×10 sub-table focused on the CANCELLED target column.
    let start = std::time::Instant::now();
    let params = SelectionParams::new(10, 10).with_targets(&["CANCELLED"]);
    let view = subtab.select(&params).expect("selection");
    println!(
        "\n--- SubTab: informative 10x10 sub-table (selected in {:.2?}) ---",
        start.elapsed()
    );

    // Optionally highlight one association rule per row, as the paper's UI does.
    let rules = RuleMiner::new(MiningConfig::default()).mine(subtab.preprocessed().binned());
    let view = subtab.with_highlights(view, &rules);
    println!("{}", view.render_with_highlights());
}
