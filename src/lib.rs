//! # subtab
//!
//! A Rust implementation of **SubTab** — the framework of *"Selecting
//! Sub-tables for Data Exploration"* (ICDE 2023) — for creating small,
//! informative sub-tables of large data tables.
//!
//! Given a table with `n` rows and `m` columns, SubTab selects `k ≪ n` rows
//! and `l ≪ m` columns such that the resulting sub-table captures prominent
//! association rules of the full table (high *cell coverage*) while showing
//! diverse values (high *diversity*). Because optimising these metrics
//! directly is intractable, the practical algorithm embeds binned cell values
//! with a Word2Vec-style model and selects the rows and columns nearest to
//! k-means centroids of the embedding — fast enough to run on every
//! exploratory query of an EDA session.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | contents |
//! |---|---|
//! | [`data`] | in-memory columnar tables, CSV I/O, selection–projection queries |
//! | [`binning`] | KDE / quantile / equal-width binning, categorical grouping |
//! | [`rules`] | Apriori association-rule mining |
//! | [`metrics`] | cell coverage, diversity, combined informativeness score |
//! | [`embed`] | tabular-sentence corpus + skip-gram-negative-sampling embedding |
//! | [`cluster`] | k-means and centroid-representative selection |
//! | [`core`] | the SubTab algorithm (pre-processing + centroid selection) |
//! | [`baselines`] | RAN, NC, Greedy, semi-greedy, MAB-UCB, graph-embedding baselines |
//! | [`datasets`] | synthetic stand-ins for the paper's evaluation datasets + EDA sessions |
//! | [`server`] | concurrent exploration server: thread pool, session cache, admission control |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use subtab::{SubTab, SubTabConfig, SelectionParams};
//! use subtab::datasets::{flights, DatasetSize};
//!
//! // Load (here: generate) a large table and pre-process it once.
//! let dataset = flights(DatasetSize::Tiny, 42);
//! let subtab = SubTab::preprocess(dataset.table, SubTabConfig::fast()).unwrap();
//!
//! // Ask for an informative 10×10 sub-table focused on the CANCELLED column.
//! let params = SelectionParams::new(10, 10).with_targets(&["CANCELLED"]);
//! let view = subtab.select(&params).unwrap();
//! assert_eq!(view.sub_table.num_rows(), 10);
//! assert!(view.columns.contains(&"CANCELLED".to_string()));
//! println!("{}", view.sub_table);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use subtab_baselines as baselines;
pub use subtab_binning as binning;
pub use subtab_cluster as cluster;
pub use subtab_core as core;
pub use subtab_data as data;
pub use subtab_datasets as datasets;
pub use subtab_embed as embed;
pub use subtab_metrics as metrics;
pub use subtab_rules as rules;
pub use subtab_server as server;

pub use subtab_binning::{Binner, BinningConfig, BinningStrategy};
pub use subtab_core::{SelectionParams, SubTab, SubTabConfig, SubTableResult};
pub use subtab_data::{Predicate, Query, QueryExpr, Table, Value};
pub use subtab_metrics::{Evaluator, SubTableScore};
pub use subtab_rules::{MiningConfig, RuleMiner};
pub use subtab_server::{ExplorationServer, Request, Response, ServerConfig, ServerError};
