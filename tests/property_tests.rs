//! Property-based tests (proptest) on the core invariants of the pipeline:
//! binning totality, metric ranges, coverage monotonicity, and selection
//! validity — over randomly generated tables.

use proptest::prelude::*;
use subtab::baselines::{naive_clustering_select, Selection};
use subtab::binning::{Binner, BinningConfig, BinningStrategy};
use subtab::data::{Column, Table};
use subtab::metrics::{diversity, CoverageIndex, Evaluator};
use subtab::rules::{MiningConfig, RuleMiner};

/// Strategy: a random small table with a numeric, a categorical and an
/// integer column, with nulls sprinkled in.
fn arbitrary_table() -> impl Strategy<Value = Table> {
    let rows = 4usize..40;
    rows.prop_flat_map(|n| {
        (
            proptest::collection::vec(proptest::option::weighted(0.85, -50.0f64..50.0), n),
            proptest::collection::vec(proptest::option::weighted(0.9, 0u8..4), n),
            proptest::collection::vec(proptest::option::weighted(0.9, 0i64..3), n),
        )
            .prop_map(|(nums, cats, ints)| {
                let cat_names = ["alpha", "beta", "gamma", "delta"];
                Table::from_columns(vec![
                    Column::from_f64("num", nums),
                    Column::from_str_values(
                        "cat",
                        cats.iter()
                            .map(|c| c.map(|i| cat_names[i as usize]))
                            .collect(),
                    ),
                    Column::from_i64("flag", ints),
                ])
                .expect("columns have equal length")
            })
    })
}

fn binning_configs() -> impl Strategy<Value = BinningConfig> {
    (2usize..8, prop_oneof![
        Just(BinningStrategy::EqualWidth),
        Just(BinningStrategy::Quantile),
        Just(BinningStrategy::Kde),
    ])
        .prop_map(|(bins, strategy)| BinningConfig::with_bins(bins).strategy(strategy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every cell of every table maps to exactly one valid bin, and nulls map
    /// to the dedicated null bin (Definition 3.2).
    #[test]
    fn binning_is_total(table in arbitrary_table(), config in binning_configs()) {
        let binner = Binner::fit(&table, &config).unwrap();
        let binned = binner.apply(&table).unwrap();
        prop_assert_eq!(binned.num_rows(), table.num_rows());
        prop_assert_eq!(binned.num_columns(), table.num_columns());
        for r in 0..table.num_rows() {
            for (c, col) in table.columns().iter().enumerate() {
                let bin = binned.bin_id(r, c) as usize;
                prop_assert!(bin < binned.num_bins(c));
                prop_assert_eq!(col.get(r).is_null(), binned.is_null(r, c));
            }
        }
    }

    /// Diversity is always in [0, 1]; identical rows give 0, and a
    /// single-row table gives 1.
    #[test]
    fn diversity_is_bounded(table in arbitrary_table()) {
        let binner = Binner::fit(&table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&table).unwrap();
        let d = diversity(&binned);
        prop_assert!((0.0..=1.0).contains(&d));
        let single = binned.take_rows(&[0]);
        prop_assert_eq!(diversity(&single), 1.0);
        let duplicated = binned.take_rows(&[0, 0, 0]);
        prop_assert!(diversity(&duplicated).abs() < 1e-9);
    }

    /// Cell coverage is in [0, 1], monotone when adding rows or columns, and
    /// the full table always reaches exactly 1 whenever any rule exists.
    #[test]
    fn coverage_is_bounded_and_monotone(table in arbitrary_table()) {
        let binner = Binner::fit(&table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&table).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.2,
            min_confidence: 0.5,
            ..Default::default()
        })
        .mine(&binned);
        let index = CoverageIndex::build(&binned, &rules);
        let all_cols: Vec<usize> = (0..binned.num_columns()).collect();
        let all_rows: Vec<usize> = (0..binned.num_rows()).collect();

        let c_small = index.cell_coverage(&all_rows[..1.min(all_rows.len())], &all_cols);
        let c_half = index.cell_coverage(&all_rows[..all_rows.len() / 2 + 1], &all_cols);
        let c_full = index.cell_coverage(&all_rows, &all_cols);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c_small));
        prop_assert!(c_small <= c_half + 1e-12);
        prop_assert!(c_half <= c_full + 1e-12);
        if index.num_rules() > 0 {
            prop_assert!((c_full - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(c_full, 0.0);
        }
        // Fewer columns never increases coverage.
        let c_fewer = index.cell_coverage(&all_rows, &all_cols[..all_cols.len() - 1]);
        prop_assert!(c_fewer <= c_full + 1e-12);
    }

    /// The combined score equals α·coverage + (1−α)·diversity for any α.
    #[test]
    fn combined_score_formula(table in arbitrary_table(), alpha in 0.0f64..1.0) {
        let binner = Binner::fit(&table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&table).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.3,
            ..Default::default()
        })
        .mine(&binned);
        let evaluator = Evaluator::new(binned, &rules, alpha);
        let rows: Vec<usize> = (0..table.num_rows().min(5)).collect();
        let cols: Vec<usize> = (0..table.num_columns()).collect();
        let s = evaluator.score(&rows, &cols);
        let expected = alpha * s.cell_coverage + (1.0 - alpha) * s.diversity;
        prop_assert!((s.combined - expected).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s.combined));
    }

    /// The naive-clustering baseline always returns a structurally valid
    /// selection, for any requested dimensions.
    #[test]
    fn baseline_selections_are_valid(
        table in arbitrary_table(),
        k in 1usize..12,
        l in 1usize..5,
        seed in 0u64..1000,
    ) {
        let s: Selection = naive_clustering_select(&table, k, l, &[], seed);
        prop_assert!(s.is_valid(k, l, table.num_rows(), table.num_columns()));
    }
}
