//! Property-based tests on the core invariants of the pipeline: binning
//! totality, metric ranges, coverage monotonicity, and selection validity —
//! over randomly generated tables.
//!
//! The original suite used `proptest`; this build environment is offline, so
//! the strategies are hand-rolled over the vendored deterministic `rand`
//! shim instead. Each property is checked against `CASES` seeded random
//! tables, and every assertion message carries the case seed so a failure
//! reproduces exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subtab::baselines::{naive_clustering_select, Selection};
use subtab::binning::{Binner, BinningConfig, BinningStrategy};
use subtab::data::{Column, Predicate, QueryExpr, Table, Value};
use subtab::metrics::{diversity, CoverageIndex, Evaluator};
use subtab::rules::{MiningConfig, RuleMiner};

const CASES: u64 = 48;

/// A random small table with a numeric, a categorical and an integer column,
/// with nulls sprinkled in (the same shape the proptest strategy generated).
fn arbitrary_table(rng: &mut StdRng) -> Table {
    let n = rng.gen_range(4usize..40);
    let nums: Vec<Option<f64>> = (0..n)
        .map(|_| rng.gen_bool(0.85).then(|| rng.gen_range(-50.0f64..50.0)))
        .collect();
    let cat_names = ["alpha", "beta", "gamma", "delta"];
    let cats: Vec<Option<&str>> = (0..n)
        .map(|_| {
            rng.gen_bool(0.9)
                .then(|| cat_names[rng.gen_range(0usize..4)])
        })
        .collect();
    let ints: Vec<Option<i64>> = (0..n)
        .map(|_| rng.gen_bool(0.9).then(|| rng.gen_range(0i64..3)))
        .collect();
    Table::from_columns(vec![
        Column::from_f64("num", nums),
        Column::from_str_values("cat", cats),
        Column::from_i64("flag", ints),
    ])
    .expect("columns have equal length")
}

fn arbitrary_binning_config(rng: &mut StdRng) -> BinningConfig {
    let bins = rng.gen_range(2usize..8);
    let strategy = match rng.gen_range(0u8..3) {
        0 => BinningStrategy::EqualWidth,
        1 => BinningStrategy::Quantile,
        _ => BinningStrategy::Kde,
    };
    BinningConfig::with_bins(bins).strategy(strategy)
}

/// Every cell of every table maps to exactly one valid bin, and nulls map
/// to the dedicated null bin (Definition 3.2).
#[test]
fn binning_is_total() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB1A0 + case);
        let table = arbitrary_table(&mut rng);
        let config = arbitrary_binning_config(&mut rng);
        let binner = Binner::fit(&table, &config).unwrap();
        let binned = binner.apply(&table).unwrap();
        assert_eq!(binned.num_rows(), table.num_rows(), "case {case}");
        assert_eq!(binned.num_columns(), table.num_columns(), "case {case}");
        for r in 0..table.num_rows() {
            for (c, col) in table.columns().iter().enumerate() {
                let bin = binned.bin_id(r, c) as usize;
                assert!(bin < binned.num_bins(c), "case {case} cell ({r},{c})");
                assert_eq!(
                    col.get(r).is_null(),
                    binned.is_null(r, c),
                    "case {case} cell ({r},{c})"
                );
            }
        }
    }
}

/// Diversity is always in [0, 1]; identical rows give 0, and a single-row
/// table gives 1.
#[test]
fn diversity_is_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD1FE + case);
        let table = arbitrary_table(&mut rng);
        let binner = Binner::fit(&table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&table).unwrap();
        let d = diversity(&binned);
        assert!((0.0..=1.0).contains(&d), "case {case}: diversity {d}");
        let single = binned.take_rows(&[0]);
        assert_eq!(diversity(&single), 1.0, "case {case}");
        let duplicated = binned.take_rows(&[0, 0, 0]);
        assert!(diversity(&duplicated).abs() < 1e-9, "case {case}");
    }
}

/// Cell coverage is in [0, 1], monotone when adding rows or columns, and
/// the full table always reaches exactly 1 whenever any rule exists.
#[test]
fn coverage_is_bounded_and_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0FE + case);
        let table = arbitrary_table(&mut rng);
        let binner = Binner::fit(&table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&table).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.2,
            min_confidence: 0.5,
            ..Default::default()
        })
        .mine(&binned);
        let index = CoverageIndex::build(&binned, &rules);
        let all_cols: Vec<usize> = (0..binned.num_columns()).collect();
        let all_rows: Vec<usize> = (0..binned.num_rows()).collect();

        let c_small = index.cell_coverage(&all_rows[..1.min(all_rows.len())], &all_cols);
        let c_half = index.cell_coverage(&all_rows[..all_rows.len() / 2 + 1], &all_cols);
        let c_full = index.cell_coverage(&all_rows, &all_cols);
        assert!(
            (0.0..=1.0 + 1e-12).contains(&c_small),
            "case {case}: {c_small}"
        );
        assert!(c_small <= c_half + 1e-12, "case {case}");
        assert!(c_half <= c_full + 1e-12, "case {case}");
        if index.num_rules() > 0 {
            assert!((c_full - 1.0).abs() < 1e-9, "case {case}: {c_full}");
        } else {
            assert_eq!(c_full, 0.0, "case {case}");
        }
        // Fewer columns never increases coverage.
        let c_fewer = index.cell_coverage(&all_rows, &all_cols[..all_cols.len() - 1]);
        assert!(c_fewer <= c_full + 1e-12, "case {case}");
    }
}

/// The combined score equals α·coverage + (1−α)·diversity for any α.
#[test]
fn combined_score_formula() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA1FA + case);
        let table = arbitrary_table(&mut rng);
        let alpha = rng.gen_range(0.0f64..1.0);
        let binner = Binner::fit(&table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&table).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.3,
            ..Default::default()
        })
        .mine(&binned);
        let evaluator = Evaluator::new(binned, &rules, alpha);
        let rows: Vec<usize> = (0..table.num_rows().min(5)).collect();
        let cols: Vec<usize> = (0..table.num_columns()).collect();
        let s = evaluator.score(&rows, &cols);
        let expected = alpha * s.cell_coverage + (1.0 - alpha) * s.diversity;
        assert!((s.combined - expected).abs() < 1e-12, "case {case}");
        assert!(
            (0.0..=1.0 + 1e-12).contains(&s.combined),
            "case {case}: {}",
            s.combined
        );
    }
}

/// A random literal drawn from every parseable value shape (finite floats
/// only — non-finite literals have no text form).
fn arbitrary_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u8..4) {
        0 => Value::Int(rng.gen_range(-100i64..100)),
        1 => Value::Float(rng.gen_range(-8000i64..8000) as f64 / 8.0),
        2 => {
            let strings = ["alpha", "it's", "x y", "", "UDP"];
            Value::from(strings[rng.gen_range(0usize..strings.len())])
        }
        _ => Value::Bool(rng.gen_bool(0.5)),
    }
}

/// A random leaf over a column pool that exercises identifier quoting:
/// plain names, a space-bearing name, an embedded quote, and a keyword.
fn arbitrary_predicate(rng: &mut StdRng) -> Predicate {
    let columns = ["age", "city", "risk level", "he said \"hi\"", "select"];
    let col = columns[rng.gen_range(0usize..columns.len())];
    match rng.gen_range(0u8..8) {
        0 => Predicate::eq(col, arbitrary_value(rng)),
        1 => Predicate::ne(col, arbitrary_value(rng)),
        2 => Predicate::lt(col, arbitrary_value(rng)),
        3 => Predicate::gt(col, arbitrary_value(rng)),
        4 => {
            let low = rng.gen_range(-500i64..500) as f64 / 4.0;
            Predicate::between(col, low, low + rng.gen_range(0i64..200) as f64 / 4.0)
        }
        5 => Predicate::is_null(col),
        6 => Predicate::not_null(col),
        _ => {
            let n = rng.gen_range(1usize..4);
            Predicate::in_set(col, (0..n).map(|_| arbitrary_value(rng)).collect())
        }
    }
}

/// A random expression tree of bounded depth mixing AND/OR/NOT freely.
fn arbitrary_expr(rng: &mut StdRng, depth: usize) -> QueryExpr {
    if depth == 0 || rng.gen_bool(0.3) {
        return QueryExpr::leaf(arbitrary_predicate(rng));
    }
    match rng.gen_range(0u8..3) {
        0 => QueryExpr::and(
            (0..rng.gen_range(1usize..4))
                .map(|_| arbitrary_expr(rng, depth - 1))
                .collect(),
        ),
        1 => QueryExpr::or(
            (0..rng.gen_range(1usize..4))
                .map(|_| arbitrary_expr(rng, depth - 1))
                .collect(),
        ),
        _ => arbitrary_expr(rng, depth - 1).negated(),
    }
}

/// Printing any random expression tree and reparsing the text yields an
/// equivalent tree: the canonical encodings — hence server cache keys —
/// are identical. (Structural equality is too strong: `x = 2.0` prints as
/// `x = 2` and reparses as an integer literal, which canonicalization
/// unifies.)
#[test]
fn printed_expressions_reparse_to_the_same_canonical_key() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A25E + case);
        let expr = arbitrary_expr(&mut rng, 4);
        let text = expr.to_string();
        let reparsed: QueryExpr = text
            .parse()
            .unwrap_or_else(|e| panic!("case {case}: {text:?} fails to reparse: {e}"));
        assert_eq!(
            expr.encode_canonical(),
            reparsed.encode_canonical(),
            "case {case}: canonical key drifts after print/reparse of {text:?}"
        );
        // Printing is a fixpoint once parsed: the reparsed tree prints to
        // text that parses back to the same key again.
        let reprinted = reparsed.to_string();
        let again: QueryExpr = reprinted
            .parse()
            .unwrap_or_else(|e| panic!("case {case}: {reprinted:?} fails to reparse: {e}"));
        assert_eq!(
            reparsed.encode_canonical(),
            again.encode_canonical(),
            "case {case}: second round trip drifts for {reprinted:?}"
        );
    }
}

/// The naive-clustering baseline always returns a structurally valid
/// selection, for any requested dimensions.
#[test]
fn baseline_selections_are_valid() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E1E + case);
        let table = arbitrary_table(&mut rng);
        let k = rng.gen_range(1usize..12);
        let l = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..1000);
        let s: Selection = naive_clustering_select(&table, k, l, &[], seed);
        assert!(
            s.is_valid(k, l, table.num_rows(), table.num_columns()),
            "case {case}: k={k} l={l} seed={seed}"
        );
    }
}
