//! Integration tests for the query-time path: sub-tables of query results
//! during replayed EDA sessions, and CSV round-tripping into the pipeline.

use subtab::data::csv;
use subtab::datasets::{cyber, generate_sessions, DatasetSize, SessionConfig};
use subtab::{SelectionParams, SubTab, SubTabConfig};

#[test]
fn session_replay_produces_subtables_from_query_results() {
    let dataset = cyber(DatasetSize::Tiny, 21);
    let subtab =
        SubTab::preprocess(dataset.table.clone(), SubTabConfig::fast()).expect("preprocess");
    let sessions = generate_sessions(
        &dataset,
        &SessionConfig {
            num_sessions: 6,
            min_queries: 3,
            max_queries: 5,
            seed: 4,
        },
    );
    let params = SelectionParams::new(6, 5);
    let mut produced = 0usize;
    for session in &sessions {
        for query in &session.queries {
            let result = query.execute(&dataset.table).expect("query executes");
            let view = subtab
                .select_for_query(query, &params)
                .expect("valid session queries never fail selection");
            if view.row_indices.is_empty() {
                // Queries matching no rows select the empty sub-table.
                assert_eq!(result.num_rows(), 0);
                assert_eq!(view.sub_table.num_rows(), 0);
                continue;
            }
            produced += 1;
            // Every selected row must satisfy the query's predicates.
            let matching = query.matching_rows(&dataset.table).expect("predicates");
            for r in &view.row_indices {
                assert!(
                    matching.contains(r),
                    "selected row {r} does not match the query"
                );
            }
            assert!(view.sub_table.num_rows() <= 6);
            assert!(view.sub_table.num_columns() <= dataset.table.num_columns());
        }
    }
    assert!(produced > 10, "most queries should yield sub-tables");
}

#[test]
fn csv_roundtrip_feeds_the_pipeline() {
    let dataset = cyber(DatasetSize::Tiny, 2);
    let text = csv::to_csv(&dataset.table);
    let reloaded = csv::parse_csv(&text).expect("CSV parses back");
    assert_eq!(reloaded.num_rows(), dataset.table.num_rows());
    assert_eq!(reloaded.num_columns(), dataset.table.num_columns());

    let subtab = SubTab::preprocess(reloaded, SubTabConfig::fast()).expect("preprocess");
    let view = subtab
        .select(&SelectionParams::new(8, 6).with_targets(&["flagged"]))
        .expect("selection");
    assert_eq!(view.sub_table.num_rows(), 8);
    assert!(view.columns.contains(&"flagged".to_string()));
}
