//! Seed determinism of the selection pipeline: the same
//! `SubTabConfig::seed` must always yield the same sub-table, whether the
//! pre-processing is shared or redone from scratch, and a different seed
//! must be allowed to (and in practice does) change the outcome. This pins
//! down flaky-seed regressions before they can creep into the experiment
//! harness, whose reported numbers all assume reproducible runs.

use subtab::data::{Predicate, Query, Value};
use subtab::datasets::{flights, spotify, DatasetSize};
use subtab::{SelectionParams, SubTab, SubTabConfig};

#[test]
fn same_seed_same_selection_within_one_preprocess() {
    let table = flights(DatasetSize::Tiny, 5).table;
    let subtab = SubTab::preprocess(table, SubTabConfig::fast().with_seed(7)).unwrap();
    let params = SelectionParams::new(10, 8);
    let a = subtab.select(&params).unwrap();
    let b = subtab.select(&params).unwrap();
    assert_eq!(a.row_indices, b.row_indices);
    assert_eq!(a.columns, b.columns);
}

#[test]
fn same_seed_same_selection_across_preprocess_runs() {
    let table = flights(DatasetSize::Tiny, 5).table;
    let params = SelectionParams::new(10, 8).with_targets(&["CANCELLED"]);
    let run = || {
        let subtab =
            SubTab::preprocess(table.clone(), SubTabConfig::fast().with_seed(1234)).unwrap();
        subtab.select(&params).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.row_indices, b.row_indices);
    assert_eq!(a.columns, b.columns);
}

#[test]
fn same_seed_same_selection_for_queries() {
    let table = spotify(DatasetSize::Tiny, 21).table;
    let subtab = SubTab::preprocess(table, SubTabConfig::fast().with_seed(99)).unwrap();
    let query = Query::new().filter(Predicate::gt("danceability", Value::from(0.2)));
    let params = SelectionParams::new(8, 6);
    let a = subtab.select_for_query(&query, &params).unwrap();
    let b = subtab.select_for_query(&query, &params).unwrap();
    assert_eq!(a.row_indices, b.row_indices);
    assert_eq!(a.columns, b.columns);
}

#[test]
fn different_seeds_may_differ_and_stay_valid() {
    let table = flights(DatasetSize::Tiny, 5).table;
    let params = SelectionParams::new(10, 8);
    let select_with = |seed: u64| {
        let subtab =
            SubTab::preprocess(table.clone(), SubTabConfig::fast().with_seed(seed)).unwrap();
        subtab.select(&params).unwrap()
    };
    let base = select_with(0);
    // Selections stay structurally valid for every seed; at least one other
    // seed must produce a different row set, otherwise the seed is dead
    // configuration and determinism tests would pass vacuously.
    let mut any_different = false;
    for seed in 1..6 {
        let other = select_with(seed);
        assert_eq!(other.row_indices.len(), base.row_indices.len());
        assert_eq!(other.columns.len(), base.columns.len());
        any_different |= other.row_indices != base.row_indices;
    }
    assert!(any_different, "seed has no effect on selection");
}
