//! Cross-crate integration tests: the full SubTab pipeline (generate data →
//! bin → mine rules → embed → select → score) and its comparison hooks with
//! the baselines.

use subtab::baselines::{naive_clustering_select, random_select, RandomConfig};
use subtab::datasets::{bank_loans, flights, DatasetSize};
use subtab::metrics::Evaluator;
use subtab::rules::{MiningConfig, RuleMiner};
use subtab::{SelectionParams, SubTab, SubTabConfig};

#[test]
fn full_pipeline_on_flights_standin() {
    let dataset = flights(DatasetSize::Tiny, 42);
    let table = dataset.table.clone();
    let subtab = SubTab::preprocess(table.clone(), SubTabConfig::fast()).expect("preprocess");

    let params = SelectionParams::new(10, 10).with_targets(&["CANCELLED"]);
    let view = subtab.select(&params).expect("selection");
    assert_eq!(view.sub_table.num_rows(), 10);
    assert_eq!(view.sub_table.num_columns(), 10);
    assert!(view.columns.contains(&"CANCELLED".to_string()));

    // Score the selection with the paper's metrics.
    let binned = subtab.preprocessed().binned();
    let rules = RuleMiner::new(MiningConfig::default()).mine(binned);
    assert!(!rules.is_empty(), "planted data must produce rules");
    let evaluator = Evaluator::new(binned.clone(), &rules, 0.5);
    let cols = view.column_indices(&table);
    let score = evaluator.score(&view.row_indices, &cols);
    assert!(score.cell_coverage > 0.0 && score.cell_coverage <= 1.0);
    assert!(score.diversity > 0.3, "diversity = {}", score.diversity);
    assert!(score.combined > 0.25, "combined = {}", score.combined);

    // The selected rows must span several planted archetypes — the whole
    // point of centroid selection is representing different areas of the data.
    let mut archetypes: Vec<Option<usize>> = view
        .row_indices
        .iter()
        .map(|&r| dataset.row_archetype[r])
        .collect();
    archetypes.sort_unstable();
    archetypes.dedup();
    assert!(
        archetypes.len() >= 3,
        "expected rows from >= 3 archetypes, got {archetypes:?}"
    );
}

#[test]
fn subtab_is_competitive_with_fast_baselines_on_planted_data() {
    let dataset = bank_loans(DatasetSize::Tiny, 9);
    let table = dataset.table.clone();
    let subtab = SubTab::preprocess(table.clone(), SubTabConfig::fast()).expect("preprocess");
    let binned = subtab.preprocessed().binned();
    let rules = RuleMiner::new(MiningConfig::default()).mine(binned);
    let evaluator = Evaluator::new(binned.clone(), &rules, 0.5);
    let (k, l) = (10, 8);

    let view = subtab
        .select(&SelectionParams::new(k, l))
        .expect("selection");
    let subtab_score = evaluator
        .score(&view.row_indices, &view.column_indices(&table))
        .combined;

    // One single random draw (not the budgeted RAN baseline).
    let single_random = random_select(
        &evaluator,
        k,
        l,
        &[],
        &RandomConfig {
            max_iterations: 1,
            time_budget: std::time::Duration::from_millis(1),
            seed: 3,
        },
    );
    let random_score = evaluator
        .score(&single_random.rows, &single_random.cols)
        .combined;

    let nc = naive_clustering_select(&table, k, l, &[], 3);
    let nc_score = evaluator.score(&nc.rows, &nc.cols).combined;

    // SubTab should not be dramatically worse than either fast baseline on
    // data with planted structure (the benches measure the full comparison;
    // here we only guard against regressions that break the pipeline).
    assert!(
        subtab_score > 0.25,
        "SubTab combined score too low: {subtab_score}"
    );
    assert!(
        subtab_score >= random_score - 0.15,
        "SubTab ({subtab_score}) far below a single random draw ({random_score})"
    );
    assert!(
        subtab_score >= nc_score - 0.15,
        "SubTab ({subtab_score}) far below naive clustering ({nc_score})"
    );
}

#[test]
fn preprocessing_is_reused_across_many_selections() {
    let dataset = flights(DatasetSize::Tiny, 3);
    let subtab = SubTab::preprocess(dataset.table, SubTabConfig::fast()).expect("preprocess");
    // Many selections of different shapes should all work off one model.
    for (k, l) in [(5, 5), (10, 10), (3, 12), (15, 4)] {
        let view = subtab
            .select(&SelectionParams::new(k, l))
            .expect("selection");
        assert_eq!(view.sub_table.num_rows(), k.min(subtab.table().num_rows()));
        assert_eq!(
            view.sub_table.num_columns(),
            l.min(subtab.table().num_columns())
        );
    }
}
