//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements just enough of the criterion 0.5 surface for the
//! workspace's `[[bench]]` target to compile and run under `cargo bench`:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! criterion's statistical machinery it runs each benchmark for a fixed
//! small number of iterations and prints mean wall-clock time per
//! iteration — enough to eyeball regressions offline; swap in the real
//! crate for publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(b.iters as u32).unwrap_or_default();
    println!(
        "bench: {label:<60} {per_iter:>12?}/iter ({} iters)",
        b.iters
    );
}

/// Mirrors `criterion::criterion_group!`; both the plain and the
/// `name/config/targets` forms expand to a runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut c = Criterion::default().sample_size(7);
        c.bench_function("count", |b| b.iter(|| count += 1));
        assert_eq!(count, 7);
    }

    #[test]
    fn group_and_id_compose_labels() {
        let id = BenchmarkId::new("fit", "kde");
        assert_eq!(id.to_string(), "fit/kde");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_with_input(BenchmarkId::new("f", 1), &3, |b, x| b.iter(|| *x * 2));
        g.finish();
    }
}
