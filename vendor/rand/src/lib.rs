//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`] and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The container that builds this workspace has no network access to a
//! crates registry, so the real `rand` cannot be fetched. The shim keeps
//! the same call-site syntax and is fully deterministic for a given seed
//! (xoshiro256++ seeded via splitmix64), which is all the workspace
//! relies on; it makes no claim of statistical equivalence with the real
//! crate's distributions.

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (`[0, 1)` for floats, fair coin for `bool`, full range for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let off = uniform_u64(rng, span + 1);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; same name, same
    /// `seed_from_u64` construction, different (but stable) stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements sampled without replacement (fewer if
        /// the slice is shorter than `amount`).
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index vector: the first `amount`
            // slots end up holding a uniform sample without replacement.
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_unit_floats() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
