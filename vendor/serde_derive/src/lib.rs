//! No-op stand-in for `serde_derive`, for offline builds.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to keep its
//! types serialization-ready; nothing bounds on the traits or serializes at
//! runtime (there is no `serde_json` in the tree). These derives therefore
//! expand to nothing, while still accepting `#[serde(...)]` helper
//! attributes so annotated fields keep compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
