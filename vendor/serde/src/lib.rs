//! Offline shim for the slice of `serde` this workspace touches: the
//! `Serialize`/`Deserialize` trait names and their derive macros. The
//! derives (from the vendored no-op `serde_derive`) expand to nothing;
//! the traits here are empty markers so `use serde::{Serialize,
//! Deserialize}` keeps resolving in both namespaces, exactly as with the
//! real crate. Swap this for the real `serde` once the build environment
//! has registry access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
